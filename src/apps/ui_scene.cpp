#include "apps/ui_scene.h"

#include <algorithm>
#include <cmath>

namespace ccdem::apps {

namespace {

#if defined(CCDEM_CANARY_BUG)
// Planted bug (-DCCDEM_CANARY_BUG=ON): dialog entries are seeded from a
// process-global session counter, so UI state leaks across scene instances
// and two runs of the same scenario paint different dialog overlays.  The
// DST determinism oracle must catch this, and the minimizer must shrink
// the state graph down to (little more than) a reachable dialog state.
std::uint32_t g_dialog_sessions = 0;
#endif

constexpr int kScrollV0Px = 24;      // initial inertia, px per frame
constexpr double kScrollDecay = 0.85;
constexpr int kMarqueeDriftRange = 32;  // covers every sample-grid stride

/// Animation colour with collision-free low bits: two paints of the same
/// element with seeds differing by less than 8192 (and not both identical)
/// always differ in at least one channel, so "we painted" implies "pixels
/// changed".  Red stays below 160; backdrops start at 192, so animations
/// and backdrops can never alias either.
gfx::Rgb888 anim_color(std::uint32_t seed, std::uint8_t rbase,
                       std::uint8_t gbase, std::uint8_t bbase) {
  return {static_cast<std::uint8_t>(rbase + (seed % 8u) * 4u),
          static_cast<std::uint8_t>(gbase + (seed % 128u)),
          static_cast<std::uint8_t>(bbase + ((seed / 128u) % 64u))};
}

}  // namespace

UiScene::UiScene(const SceneSpec& spec, gfx::Size size, sim::Rng /*rng*/)
    : spec_(spec.ui), size_(size) {
  // Sanitize so a hand-built spec can never index out of range: the DSL
  // parser rejects these, but scenes are also constructed directly.
  if (spec_.states.empty()) spec_.states.push_back(UiState{});
  const int n = static_cast<int>(spec_.states.size());
  for (UiState& st : spec_.states) {
    if (st.next < 0 || st.next >= n) st.next = 0;
    if (st.touch_next < -1 || st.touch_next >= n) st.touch_next = -1;
    st.anim_fps = std::max(0.0, st.anim_fps);
    st.dwell_ms = std::max<std::int64_t>(0, st.dwell_ms);
  }
  spec_.marquee_px = std::clamp(spec_.marquee_px, 1, 4096);
  spec_.idle_timeout_ms = std::max<std::int64_t>(0, spec_.idle_timeout_ms);
}

gfx::Rgb888 UiScene::backdrop_color() const {
  const auto i = static_cast<std::uint32_t>(state_);
  const auto k = static_cast<std::uint32_t>(cur().kind);
  // 37 is odd, so i*37 mod 64 is injective for i < 64: every state index
  // gets a unique backdrop red, which is what makes a cross-state
  // transition an honest full-surface change.
  return {static_cast<std::uint8_t>(192 + (i * 37u) % 64u),
          static_cast<std::uint8_t>(60 + k * 24u),
          static_cast<std::uint8_t>(40 + (i * 53u) % 128u)};
}

void UiScene::paint_backdrop(gfx::Canvas& canvas, bool& changed) {
  canvas.fill(backdrop_color());
  changed = true;
}

void UiScene::arm_dialog_entry() {
  if (cur().kind != UiState::Kind::kDialog) return;
#if defined(CCDEM_CANARY_BUG)
  dialog_seed_base_ = ++g_dialog_sessions * 1000003u;
#else
  dialog_seed_base_ = 0;
#endif
}

void UiScene::init(gfx::Canvas& canvas) {
  state_ = 0;
  entered_ = sim::Time{};
  last_version_ = -1;
  bool changed = false;
  paint_backdrop(canvas, changed);
  // The initial state counts as entered: a one-state dialog graph must
  // still express dialog-entry behaviour (and the canary bug).
  arm_dialog_entry();
}

void UiScene::on_touch(const input::TouchEvent& e) {
  touched_ = true;
  last_touch_ = e.t;
  if (e.action != input::TouchEvent::Action::kDown) return;
  const int target = cur().touch_next;
  if (target >= 0) pending_touch_target_ = target;
}

void UiScene::enter_state(gfx::Canvas& canvas, int target, sim::Time t,
                          bool& changed) {
  const int n = static_cast<int>(spec_.states.size());
  if (target < 0 || target >= n) target = 0;
  const bool same = target == state_;
  state_ = target;
  entered_ = t;
  last_version_ = -1;
  slide_edge_px_ = 0;
  ++entry_seq_;
  if (!same) {
    paint_backdrop(canvas, changed);
    marquee_y_ = -1;  // the old band is under the new backdrop now
  }
  arm_dialog_entry();
}

bool UiScene::render(gfx::Canvas& canvas, sim::Time t) {
  bool changed = false;

  // A touch that arrived since the last render drives its transition first.
  if (pending_touch_target_ >= 0) {
    const int target = pending_touch_target_;
    pending_touch_target_ = -1;
    enter_state(canvas, target, t, changed);
  }

  // Timed transitions plus the interaction timeout.  The sweep is bounded:
  // a render gap longer than a whole dwell cycle fast-forwards at most 8
  // hops instead of looping through the cycle once per elapsed dwell.
  for (int hop = 0; hop < 8; ++hop) {
    const UiState& st = cur();
    const sim::Time anchor =
        touched_ && last_touch_ > entered_ ? last_touch_ : entered_;
    if (spec_.idle_timeout_ms > 0 && state_ != 0 &&
        t - anchor >= sim::milliseconds(spec_.idle_timeout_ms)) {
      enter_state(canvas, 0, t, changed);
      continue;
    }
    if (st.dwell_ms > 0 && t - entered_ >= sim::milliseconds(st.dwell_ms)) {
      enter_state(canvas, st.next, t, changed);
      continue;
    }
    break;
  }

  if (animate(canvas, t)) changed = true;
  return changed;
}

bool UiScene::animate(gfx::Canvas& canvas, sim::Time t) {
  const UiState& st = cur();
  if (st.anim_fps <= 0.0) return false;
  const auto version =
      static_cast<std::int64_t>((t - entered_).seconds() * st.anim_fps);
  if (version == last_version_) return false;
  last_version_ = version;

  const int w = size_.width;
  const int h = size_.height;
  const std::uint32_t seed = anim_seed(version);

  switch (st.kind) {
    case UiState::Kind::kIdle: {
      // A small clock/widget tick in the top-left corner.
      canvas.fill_rect(gfx::Rect{0, 0, std::min(w, 120), std::min(h, 24)},
                       anim_color(seed, 56, 40, 40));
      return true;
    }
    case UiState::Kind::kMenu: {
      const int rows = std::clamp(h / 24, 1, 8);
      const int rh = std::max(1, h / rows);
      const auto row_rect = [&](int i) {
        return gfx::Rect{0, i * rh, w, std::min(rh, h - i * rh)};
      };
      const int cur_row = static_cast<int>(version % rows);
      if (rows > 1) {
        const int prev_row = static_cast<int>((version + rows - 1) % rows);
        if (prev_row != cur_row) {
          canvas.fill_rect(row_rect(prev_row), gfx::Rgb888{64, 90, 110});
        }
      }
      canvas.draw_text_block(row_rect(cur_row), anim_color(seed, 16, 10, 20),
                             anim_color(seed, 96, 60, 40), seed);
      return true;
    }
    case UiState::Kind::kScroll: {
      // Inertia: the fling velocity decays geometrically and the state goes
      // quiet once it rounds to zero -- the burst-then-idle scroll shape.
      const int dy0 = static_cast<int>(std::lround(
          kScrollV0Px * std::pow(kScrollDecay, static_cast<double>(version))));
      const int dy = std::min(dy0, h);
      if (dy <= 0) return false;
      if (dy < h) canvas.scroll_up(gfx::Rect{0, 0, w, h}, dy);
      canvas.fill_rect(gfx::Rect{0, h - dy, w, dy},
                       anim_color(seed, 32, 80, 100));
      return true;
    }
    case UiState::Kind::kSlide: {
      // A panel sweeps in from the left, one column strip per frame, then
      // the state goes quiet until its dwell expires.
      if (slide_edge_px_ >= w) return false;
      const int step = std::max(8, w / 10);
      const int new_edge = std::min(w, slide_edge_px_ + step);
      canvas.fill_rect(gfx::Rect{slide_edge_px_, 0, new_edge - slide_edge_px_,
                                 h},
                       anim_color(seed, 100, 50, 60));
      slide_edge_px_ = new_edge;
      return true;
    }
    case UiState::Kind::kMarquee: {
      // A text band `marquee_px` tall; its vertical position drifts one
      // pixel per frame across kMarqueeDriftRange, so even a 1-px band
      // periodically crosses every sample-grid row instead of living
      // forever in a blind gap (the Fig. 6 failure mode under test).
      const int bh = std::min(spec_.marquee_px, h);
      const int range = std::min(h - bh, kMarqueeDriftRange);
      int y = (h - bh) / 2;
      if (range > 0) {
        const auto ph = static_cast<int>(version % (2 * range));
        const int off = ph < range ? ph : 2 * range - ph;
        y = std::clamp((h - bh) / 2 - range / 2 + off, 0, h - bh);
      }
      if (marquee_y_ >= 0 && marquee_y_ != y) {
        canvas.fill_rect(gfx::Rect{0, marquee_y_, w, bh}, backdrop_color());
      }
      canvas.fill_rect(gfx::Rect{0, y, w, bh}, anim_color(seed, 48, 30, 110));
      const int hw = std::min(8, w);
      const auto x = static_cast<int>(
          (version * 16) % std::max<std::int64_t>(1, w - hw + 1));
      canvas.fill_rect(gfx::Rect{x, y, hw, bh}, anim_color(seed, 120, 90, 10));
      marquee_y_ = y;
      return true;
    }
    case UiState::Kind::kDialog: {
      const int bw = std::max(1, w * 3 / 5);
      const int bh = std::max(1, h * 2 / 5);
      const gfx::Rect box{(w - bw) / 2, (h - bh) / 2, bw, bh};
      const std::uint32_t s = seed + dialog_seed_base_;
      canvas.draw_text_block(box, anim_color(s, 16, 20, 10),
                             anim_color(s, 80, 70, 90), s);
      if (bw > 8 && bh > 8) {
        canvas.draw_frame(box, 2, anim_color(s, 120, 30, 60));
      }
      return true;
    }
  }
  return false;
}

double UiScene::nominal_content_fps(sim::Time t) const {
  const UiState& st = cur();
  if (st.anim_fps <= 0.0) return 0.0;
  if (st.kind == UiState::Kind::kScroll) {
    const auto version =
        static_cast<std::int64_t>((t - entered_).seconds() * st.anim_fps);
    const int dy = static_cast<int>(std::lround(
        kScrollV0Px * std::pow(kScrollDecay, static_cast<double>(version))));
    if (dy <= 0) return 0.0;
  }
  if (st.kind == UiState::Kind::kSlide && slide_edge_px_ >= size_.width) {
    return 0.0;
  }
  return st.anim_fps;
}

// ---------------------------------------------------------------------------
// BurstVideoScene

BurstVideoScene::BurstVideoScene(const SceneSpec& spec, gfx::Size size,
                                 sim::Rng /*rng*/)
    : spec_(spec.burst), size_(size) {
  spec_.burst_frames = std::clamp(spec_.burst_frames, 1, 1000);
  if (!(spec_.burst_fps > 0.0)) spec_.burst_fps = 30.0;
  spec_.gap_ms = std::max<std::int64_t>(0, spec_.gap_ms);
  if (spec_.motion.empty()) spec_.motion.push_back(2);
  for (int& m : spec_.motion) m = std::clamp(m, 0, 3);
  burst_ms_ = std::max<std::int64_t>(
      1, std::llround(spec_.burst_frames * 1000.0 / spec_.burst_fps));
  period_ms_ = burst_ms_ + spec_.gap_ms;
}

BurstVideoScene::Position BurstVideoScene::position_at(sim::Time t) const {
  const std::int64_t t_ms = t.ticks / sim::kTicksPerMillisecond;
  Position p;
  p.segment = t_ms / period_ms_;
  const std::int64_t off = t_ms % period_ms_;
  p.in_burst = off < burst_ms_;
  p.frame = p.in_burst
                ? std::min(spec_.burst_frames - 1,
                           static_cast<int>(static_cast<double>(off) *
                                            spec_.burst_fps / 1000.0))
                : spec_.burst_frames - 1;
  return p;
}

int BurstVideoScene::motion_level(std::int64_t segment) const {
  return spec_.motion[static_cast<std::size_t>(
      segment % static_cast<std::int64_t>(spec_.motion.size()))];
}

void BurstVideoScene::init(gfx::Canvas& canvas) {
  canvas.fill(gfx::Rgb888{8, 8, 16});
}

void BurstVideoScene::paint_burst_frame(gfx::Canvas& canvas,
                                        std::int64_t version,
                                        std::int64_t segment, int level) {
  // Segment backdrop: a gradient that always differs between consecutive
  // segments (both channels cycle with the segment index).
  const auto s32 = static_cast<std::uint32_t>(segment);
  const gfx::Rgb888 top{static_cast<std::uint8_t>(24 + (s32 % 8u) * 2u),
                        static_cast<std::uint8_t>(40 + (s32 % 120u)), 100};
  const gfx::Rgb888 bottom{static_cast<std::uint8_t>(24 + (s32 % 8u) * 2u),
                           static_cast<std::uint8_t>(160 + (s32 % 64u)), 40};
  canvas.fill_gradient(gfx::Rect::of(size_), top, bottom);

  // `level` moving blocks per frame (EVSO motion level).  Block colour is
  // collision-free across consecutive versions, and block red (>= 100)
  // never matches the gradient red (< 40), so every burst frame changes
  // pixels while level-0 segments stay perfectly static after their first.
  const auto vs = static_cast<std::uint32_t>(version);
  const int bw = std::min(std::max(8, size_.width / 8), size_.width);
  const int bh = std::min(std::max(8, size_.height / 10), size_.height);
  for (int b = 0; b < level; ++b) {
    const std::uint32_t hash =
        vs * 2654435761u + static_cast<std::uint32_t>(b) * 40503u;
    const int x = static_cast<int>(
        hash % static_cast<std::uint32_t>(size_.width - bw + 1));
    const int y = static_cast<int>(
        (hash >> 12) % static_cast<std::uint32_t>(size_.height - bh + 1));
    canvas.fill_rect(
        gfx::Rect{x, y, bw, bh},
        gfx::Rgb888{static_cast<std::uint8_t>(100 + (vs % 8u) * 4u +
                                              static_cast<std::uint32_t>(b)),
                    static_cast<std::uint8_t>(40 + (vs % 128u)),
                    static_cast<std::uint8_t>(30 + ((vs / 128u) % 64u))});
  }
}

bool BurstVideoScene::render(gfx::Canvas& canvas, sim::Time t) {
  const Position p = position_at(t);
  const std::int64_t version = p.segment * spec_.burst_frames + p.frame;
  if (version == last_version_) return false;
  last_version_ = version;
  const int level = motion_level(p.segment);
  const bool new_segment = p.segment != last_segment_;
  last_segment_ = p.segment;
  // A level-0 segment changes pixels exactly once (its backdrop); every
  // later frame of the burst is a true no-op.
  if (level == 0 && !new_segment) return false;
  paint_burst_frame(canvas, version, p.segment, level);
  return true;
}

double BurstVideoScene::nominal_content_fps(sim::Time t) const {
  const Position p = position_at(t);
  if (!p.in_burst) return 0.0;
  return motion_level(p.segment) > 0 ? spec_.burst_fps : 0.0;
}

}  // namespace ccdem::apps
