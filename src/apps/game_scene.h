// GameScene: an engine-driven game (Jelly Splash class).
//
// Game engines typically render every V-Sync whether or not the game state
// advanced -- this is the dominant redundancy source in Fig. 3 (80 % of
// games post >20 redundant fps).  The scene's *logic* ticks at
// `game_content_fps`; each logic tick moves sprites (erase + redraw), and a
// touch temporarily raises the logic rate (the game reacts), which drives
// the sudden content-rate rises the touch booster exists for.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/scene.h"

namespace ccdem::apps {

class GameScene final : public Scene {
 public:
  GameScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng);

  void init(gfx::Canvas& canvas) override;
  bool render(gfx::Canvas& canvas, sim::Time t) override;
  void on_touch(const input::TouchEvent& e) override;
  [[nodiscard]] double nominal_content_fps(sim::Time t) const override;

 private:
  struct Sprite {
    gfx::Point pos{};
    gfx::Rgb888 color{};
    // Deterministic Lissajous-style path parameters.
    double ax = 0, ay = 0;        ///< amplitudes
    double fx = 0, fy = 0;        ///< angular step per logic tick
    double phx = 0, phy = 0;      ///< phases
    gfx::Point center{};
  };

  [[nodiscard]] gfx::Point sprite_pos(const Sprite& s,
                                      std::int64_t tick) const;
  void draw_sprite_at(gfx::Canvas& canvas, const Sprite& s, gfx::Point p);
  void erase_sprite_at(gfx::Canvas& canvas, const Sprite& s, gfx::Point p);
  [[nodiscard]] double effective_content_fps(sim::Time t) const;

  SceneSpec spec_;
  gfx::Size size_;
  sim::Rng rng_;
  std::vector<Sprite> sprites_;
  gfx::Rgb888 bg_{18, 24, 40};
  gfx::Rect hud_{};
  std::int64_t last_tick_ = -1;
  double logic_clock_ = 0.0;       ///< accumulated logic ticks (fractional)
  sim::Time last_render_{};
  sim::Time boost_until_{};
  std::uint32_t score_ = 0;
};

}  // namespace ccdem::apps
