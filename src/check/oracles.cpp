#include "check/oracles.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "core/section_table.h"
#include "gfx/compare.h"
#include "obs/obs.h"
#include "obs/trace_export.h"

namespace ccdem::check {

namespace {

bool starts_with_any(const std::string& name,
                     const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

std::optional<std::string> diff_trace(const sim::Trace& a, const sim::Trace& b,
                                      const std::string& what,
                                      const char* field) {
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << what << ": " << field << " trace size " << a.size() << " vs "
       << b.size();
    return os.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& pa = a.points()[i];
    const auto& pb = b.points()[i];
    if (pa.t.ticks != pb.t.ticks || pa.value != pb.value) {
      std::ostringstream os;
      os << what << ": " << field << " trace point " << i << " ("
         << pa.t.ticks << "us, " << pa.value << ") vs (" << pb.t.ticks
         << "us, " << pb.value << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> diff_scalar(double a, double b,
                                       const std::string& what,
                                       const char* field) {
  if (a == b) return std::nullopt;
  std::ostringstream os;
  os << what << ": " << field << " " << a << " vs " << b;
  return os.str();
}

std::optional<std::string> diff_scalar(std::uint64_t a, std::uint64_t b,
                                       const std::string& what,
                                       const char* field) {
  if (a == b) return std::nullopt;
  std::ostringstream os;
  os << what << ": " << field << " " << a << " vs " << b;
  return os.str();
}

}  // namespace

RunArtifacts run_scenario_once(harness::ExperimentConfig cfg,
                               const RunOptions& opt) {
  obs::ObsSink sink;
  sink.spans.set_enabled(opt.spans);
  cfg.obs = &sink;
  cfg.dpm.meter.damage_culling = opt.damage_culling;
  cfg.governor.meter.damage_culling = opt.damage_culling;
  cfg.tile_memo = opt.tile_memo;
  cfg.hash_frames = opt.hash_frames;
  std::optional<gfx::kernels::ScopedKernelOverride> force_scalar;
  if (opt.force_scalar_kernels) {
    force_scalar.emplace(gfx::kernels::scalar_kernels());
  }
  RunArtifacts out;
  out.result = harness::run_experiment(cfg);
  out.counters = sink.counters.snapshot();
  out.spans = sink.spans.spans();
  out.trace_csv = obs::trace_csv_to_string(out.spans, out.counters);
  return out;
}

std::optional<std::string> diff_results(const harness::ExperimentResult& a,
                                        const harness::ExperimentResult& b,
                                        const std::string& what) {
  if (auto d = diff_scalar(a.mean_power_mw, b.mean_power_mw, what,
                           "mean_power_mw")) {
    return d;
  }
  if (auto d = diff_trace(a.power, b.power, what, "power")) return d;
  if (auto d = diff_trace(a.frame_rate, b.frame_rate, what, "frame_rate")) {
    return d;
  }
  if (auto d = diff_trace(a.content_rate, b.content_rate, what,
                          "content_rate")) {
    return d;
  }
  if (auto d = diff_trace(a.measured_content_rate, b.measured_content_rate,
                          what, "measured_content_rate")) {
    return d;
  }
  if (auto d = diff_trace(a.refresh_rate, b.refresh_rate, what,
                          "refresh_rate")) {
    return d;
  }
  if (auto d = diff_scalar(a.meter_error_rate, b.meter_error_rate, what,
                           "meter_error_rate")) {
    return d;
  }
  if (auto d = diff_scalar(a.rate_switches, b.rate_switches, what,
                           "rate_switches")) {
    return d;
  }
  if (auto d = diff_scalar(a.response_mean_ms, b.response_mean_ms, what,
                           "response_mean_ms")) {
    return d;
  }
  if (auto d = diff_scalar(a.response_p95_ms, b.response_p95_ms, what,
                           "response_p95_ms")) {
    return d;
  }
  if (auto d = diff_scalar(a.response_max_ms, b.response_max_ms, what,
                           "response_max_ms")) {
    return d;
  }
  if (auto d = diff_scalar(
          static_cast<std::uint64_t>(a.response_interactions),
          static_cast<std::uint64_t>(b.response_interactions), what,
          "response_interactions")) {
    return d;
  }
  if (auto d = diff_scalar(a.energy.total_mj(), b.energy.total_mj(), what,
                           "energy.total_mj")) {
    return d;
  }
  if (auto d = diff_scalar(a.energy.refresh_mj, b.energy.refresh_mj, what,
                           "energy.refresh_mj")) {
    return d;
  }
  if (auto d = diff_scalar(a.energy.meter_mj, b.energy.meter_mj, what,
                           "energy.meter_mj")) {
    return d;
  }
  if (auto d = diff_scalar(a.mean_refresh_hz, b.mean_refresh_hz, what,
                           "mean_refresh_hz")) {
    return d;
  }
  if (auto d = diff_scalar(a.frames_composed, b.frames_composed, what,
                           "frames_composed")) {
    return d;
  }
  if (auto d = diff_scalar(a.content_frames, b.content_frames, what,
                           "content_frames")) {
    return d;
  }
  if (auto d = diff_scalar(a.frames_posted, b.frames_posted, what,
                           "frames_posted")) {
    return d;
  }
  if (auto d = diff_scalar(a.touch_events, b.touch_events, what,
                           "touch_events")) {
    return d;
  }
  if (auto d = diff_scalar(a.final_frame_hash, b.final_frame_hash, what,
                           "final_frame_hash")) {
    return d;
  }
  if (auto d = diff_scalar(a.frame_stream_hash, b.frame_stream_hash, what,
                           "frame_stream_hash")) {
    return d;
  }
  return std::nullopt;
}

std::optional<std::string> diff_counters(
    const obs::Counters::Snapshot& a, const obs::Counters::Snapshot& b,
    const std::string& what, const std::vector<std::string>& exclude_prefixes) {
  // Snapshots are name-sorted; walk both in lockstep, skipping excluded
  // names on either side.
  std::size_t i = 0, j = 0;
  const auto skip = [&](const obs::Counters::Snapshot& s, std::size_t& k) {
    while (k < s.counters.size() &&
           starts_with_any(s.counters[k].first, exclude_prefixes)) {
      ++k;
    }
  };
  while (true) {
    skip(a, i);
    skip(b, j);
    const bool ea = i >= a.counters.size();
    const bool eb = j >= b.counters.size();
    if (ea && eb) break;
    std::ostringstream os;
    if (ea != eb) {
      const auto& extra = ea ? b.counters[j] : a.counters[i];
      os << what << ": counter '" << extra.first << "' only in "
         << (ea ? "second" : "first") << " run";
      return os.str();
    }
    if (a.counters[i].first != b.counters[j].first) {
      os << what << ": counter name mismatch '" << a.counters[i].first
         << "' vs '" << b.counters[j].first << "'";
      return os.str();
    }
    if (a.counters[i].second != b.counters[j].second) {
      os << what << ": counter '" << a.counters[i].first << "' "
         << a.counters[i].second << " vs " << b.counters[j].second;
      return os.str();
    }
    ++i;
    ++j;
  }
  return std::nullopt;
}

std::optional<std::string> check_section_reference(const Scenario& s) {
  const display::RefreshRateSet ladder{s.rates};
  const core::SectionTable table =
      core::SectionTable::build(ladder, s.alpha);

  // Independent Equation (1) evaluation: the section of content rate c is
  // the first rung whose upper threshold r_{i-1} + alpha (r_i - r_{i-1})
  // exceeds c (thresholds recomputed per query -- deliberately not the
  // production table walk).
  const auto reference_index = [&](double c) -> std::size_t {
    const double cc = std::max(c, 0.0);
    for (std::size_t i = 0; i + 1 < ladder.count(); ++i) {
      const double r_prev =
          i == 0 ? 0.0 : static_cast<double>(ladder.at(i - 1));
      const double r_i = static_cast<double>(ladder.at(i));
      const double hi = r_prev + s.alpha * (r_i - r_prev);
      if (cc < hi) return i;
    }
    return ladder.count() - 1;
  };
  const auto reference_ceil = [&](double c) -> int {
    for (std::size_t i = 0; i < ladder.count(); ++i) {
      if (static_cast<double>(ladder.at(i)) >= c) return ladder.at(i);
    }
    return ladder.max_hz();
  };

  // Dense sweep plus every threshold boundary and its neighbourhood.
  std::vector<double> probes;
  for (double c = 0.0; c <= static_cast<double>(ladder.max_hz()) + 15.0;
       c += 0.25) {
    probes.push_back(c);
  }
  for (std::size_t i = 0; i < ladder.count(); ++i) {
    const double r_prev = i == 0 ? 0.0 : static_cast<double>(ladder.at(i - 1));
    const double r_i = static_cast<double>(ladder.at(i));
    const double hi = r_prev + s.alpha * (r_i - r_prev);
    probes.push_back(hi);
    probes.push_back(std::nextafter(hi, -1.0));
    probes.push_back(std::nextafter(hi, hi + 1.0));
    probes.push_back(r_i);
  }

  for (double c : probes) {
    const std::size_t want = reference_index(c);
    const std::size_t got = table.section_index_for(c);
    if (got != want) {
      std::ostringstream os;
      os << "section reference: index for content " << c << " fps is " << got
         << ", reference says " << want << " (alpha " << s.alpha << ")";
      return os.str();
    }
    if (table.rate_for(c) != ladder.at(want)) {
      std::ostringstream os;
      os << "section reference: rate for content " << c << " fps is "
         << table.rate_for(c) << ", reference says " << ladder.at(want);
      return os.str();
    }
    if (ladder.ceil_rate(c) != reference_ceil(c)) {
      std::ostringstream os;
      os << "section reference: ceil_rate(" << c << ") is "
         << ladder.ceil_rate(c) << ", reference says " << reference_ceil(c);
      return os.str();
    }
  }

  // Structural checks on the built table: contiguous half-open sections
  // from 0 to infinity, rungs ascending.
  const auto& sections = table.sections();
  if (sections.size() != ladder.count()) {
    return std::string("section reference: table has ") +
           std::to_string(sections.size()) + " sections for " +
           std::to_string(ladder.count()) + " rungs";
  }
  double lo = 0.0;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].lo_fps != lo) {
      return std::string("section reference: section ") + std::to_string(i) +
             " lo is not contiguous";
    }
    lo = sections[i].hi_fps;
    if (sections[i].refresh_hz != ladder.at(i)) {
      return std::string("section reference: section ") + std::to_string(i) +
             " rung mismatch";
    }
  }
  if (!std::isinf(sections.back().hi_fps)) {
    return std::string("section reference: last section is bounded");
  }
  return std::nullopt;
}

}  // namespace ccdem::check
