// TraceInvariantChecker: properties every run must satisfy, checked against
// the observability artifacts (span stream, counter snapshot, result traces)
// of a scenario run.
//
// Unlike the differential oracles (oracles.h), which need a second run to
// compare against, these are single-run laws:
//  I1 refresh floor   -- a panel refreshing at h Hz cannot deliver content
//                        faster than h; every content-rate sample is bounded
//                        by the max refresh rate over its trailing window
//                        (plus boundary slack).
//  I2 touch boost     -- in boost-enabled modes on clean runs, every
//                        controller evaluation inside a gesture's hold
//                        window must target at least the boost rate.
//  I3 recovery        -- safe-mode entries are monotone in fault streaks:
//                        entries x safe_mode_after <= give-ups + watchdog
//                        fallbacks, re-arms <= entries, and a clean run
//                        registers no fault or recovery counter at all.
//  I5 meter work      -- damage culling is an optimisation, not a model
//                        change: per classified frame the culled meter's
//                        compared + skipped samples account for exactly the
//                        whole grid, and the unculled reference never skips.
//  I6 counter/spans   -- the counter graph is consistent (flinger ==
//                        recorder == result scalars, content + redundant ==
//                        composed, vsyncs >= frames) and the span stream
//                        matches it one span per phase occurrence, in
//                        nondecreasing time, presenting only ladder rates.
//  I7 ladder order    -- the degradation ladder sheds and recovers one rung
//                        at a time, never skipping, with every consecutive
//                        rung change at least step_hold apart and down-steps
//                        at least recovery_cooldown apart.
//  I8 ladder return   -- once pressure episodes stop arriving
//                        (pressure_until_ms) and the run is long enough, the
//                        ladder returns to rung 0 within a bounded recovery
//                        window and stays there.
//
// (I4, the display-quality gate, lives in dst.cpp: it needs a second
// baseline-mode run to compare against -- as does I8's steady-state
// quality/energy arm, which diffs the post-recovery tail against the
// unpressured run.)
//
// check() returns every violation found, not just the first, so a fuzz
// failure report shows the full blast radius of a bug.
#pragma once

#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/scenario.h"

namespace ccdem::check {

struct InvariantOptions {
  /// Slack on the refresh-floor bound (window boundary effects: a frame at
  /// each edge, rate-switch retiming with fast_rate_up).
  double rate_slack_hz = 3.0;
};

class TraceInvariantChecker {
 public:
  explicit TraceInvariantChecker(Scenario scenario,
                                 InvariantOptions options = {});

  /// Checks every invariant against the primary (damage-culled) run;
  /// `unculled` -- when available -- additionally gets the I5 reference-path
  /// accounting check.  Returns all violations (empty = pass).
  [[nodiscard]] std::vector<std::string> check(
      const RunArtifacts& culled, const RunArtifacts* unculled = nullptr) const;

 private:
  void check_refresh_floor(const RunArtifacts& r,
                           std::vector<std::string>& out) const;
  void check_touch_boost(const RunArtifacts& r,
                         std::vector<std::string>& out) const;
  void check_recovery(const RunArtifacts& r,
                      std::vector<std::string>& out) const;
  void check_meter_accounting(const RunArtifacts& culled,
                              const RunArtifacts* unculled,
                              std::vector<std::string>& out) const;
  void check_counter_graph(const RunArtifacts& r,
                           std::vector<std::string>& out) const;
  void check_span_stream(const RunArtifacts& r,
                         std::vector<std::string>& out) const;
  void check_ladder_order(const RunArtifacts& r,
                          std::vector<std::string>& out) const;
  void check_ladder_return(const RunArtifacts& r,
                           std::vector<std::string>& out) const;

  Scenario scenario_;
  InvariantOptions options_;
};

}  // namespace ccdem::check
