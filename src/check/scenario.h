// Scenario: one self-contained DST experiment description.
//
// A scenario is the unit the fuzzer samples, the oracles diff, the
// minimizer shrinks and a `.repro` file persists.  It is pure data -- every
// field is serializable text -- and expands into a harness::ExperimentConfig
// on demand, so replaying a repro needs nothing beyond this file's parser.
//
// Serialization is the repo's strict key=value dialect (config_io's rules:
// whole-value numeric parses, no NaN/inf, unknown keys rejected) under the
// `schema = ccdem-repro-v1` header, with the optional shrunk touch script
// embedded between `begin_script` / `end_script` markers in the script_io
// line format.  Round-trip is exact: parse(to_string(s)) == s.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/grid_sampler.h"
#include "device/control_mode.h"
#include "harness/experiment.h"
#include "input/touch_event.h"
#include "sim/time.h"

namespace ccdem::check {

/// Which classes of the (scaled) nominal FaultPlan stay enabled.  The
/// minimizer switches classes off one at a time to isolate the one a
/// failure needs.
struct FaultClasses {
  bool switching = true;   ///< NAK + settle-delay faults
  bool stuck = true;       ///< stuck-at-rate episodes
  bool capability = true;  ///< transient capability-loss episodes
  bool touch = true;       ///< drop / duplicate / delay
  bool meter = true;       ///< grid-sample bit flips

  [[nodiscard]] bool all() const {
    return switching && stuck && capability && touch && meter;
  }
  [[nodiscard]] bool operator==(const FaultClasses&) const = default;
};

/// Which pressure episode classes of the (scaled) pressure-nominal plan stay
/// enabled.  The minimizer uses these to isolate the guilty episode class.
struct PressureClasses {
  bool thermal = true;   ///< rate-ladder-capping throttle episodes
  bool brownout = true;  ///< state-of-charge sag episodes
  bool jitter = true;    ///< vsync late/drop storms

  [[nodiscard]] bool all() const { return thermal && brownout && jitter; }
  [[nodiscard]] bool operator==(const PressureClasses&) const = default;
};

struct Scenario {
  std::string app = "Facebook";
  device::ControlMode mode = device::ControlMode::kSectionWithBoost;
  /// Explicit stage composition (canonical `section,hysteresis,boost`
  /// rendering); non-empty iff mode == kPipeline.  Kept as text so the
  /// serialized form round-trips byte-exactly.
  std::string pipeline;
  std::int64_t duration_ms = 3000;
  std::uint64_t seed = 1;
  std::string grid = "9k";  ///< 2k | 4k | 9k | 36k | full
  std::int64_t eval_ms = 100;
  std::int64_t boost_hold_ms = 500;
  std::int64_t meter_window_ms = 1000;
  double alpha = 0.5;
  std::vector<int> rates = {20, 24, 30, 40, 60};
  int baseline_hz = 0;  ///< 0 = ladder maximum
  int min_hz = 0;       ///< 0 = no floor
  int boost_hz = 0;     ///< 0 = ladder maximum
  bool fast_rate_up = false;
  /// 0 = clean run; otherwise FaultPlan::nominal().scaled(fault_scale) with
  /// the classes below masked.
  double fault_scale = 0.0;
  std::int64_t fault_until_ms = 0;  ///< 0 = faults active for the whole run
  FaultClasses fault_classes{};
  /// 0 = no pressure; otherwise FaultPlan::pressure_nominal().scaled(...)
  /// with the classes below masked, overlaid on the fault plan.
  double pressure_scale = 0.0;
  /// 0 = episodes arrive for the whole run; otherwise they stop arriving
  /// here and the ladder must recover to rung 0 (invariant I8).
  std::int64_t pressure_until_ms = 0;
  PressureClasses pressure_classes{};
  /// Additionally diff the run through the FleetRunner (serial == fleet).
  bool fleet = false;
  /// Scene override in canonical ccdem-scene-v1 text (apps/scene_dsl.h);
  /// empty = the app profile's own scene.  Serialized between
  /// `begin_scene` / `end_scene` markers and omitted entirely when empty,
  /// so every pre-scene repro and golden stays byte-identical.
  std::string scene;
  /// Explicit touch script; unset = the seed's Monkey script.
  std::optional<std::vector<input::TouchGesture>> script;

  [[nodiscard]] sim::Duration duration() const {
    return sim::milliseconds(duration_ms);
  }
  [[nodiscard]] core::GridSpec grid_spec() const;
  /// The full experiment config this scenario describes.  Requires the
  /// scenario to be valid (parse_scenario output, or a generator's).
  [[nodiscard]] harness::ExperimentConfig experiment_config() const;

  [[nodiscard]] bool operator==(const Scenario&) const = default;
};

/// Canonical `ccdem-repro-v1` text (defaulted fields omitted).
[[nodiscard]] std::string scenario_to_string(const Scenario& s);

/// Strict parse; std::nullopt on any malformed or unknown input, with a
/// message in `error` (when non-null).  Comment lines (`#`) are ignored, so
/// a full `.repro` file (failure header + scenario) parses directly.
[[nodiscard]] std::optional<Scenario> parse_scenario(
    const std::string& text, std::string* error = nullptr);

/// A `.repro` file: `# failure:` header comments followed by the scenario.
[[nodiscard]] std::string repro_to_string(
    const Scenario& s, const std::vector<std::string>& failures);

/// App lookup across the paper's 30 profiles, the accuracy-study wallpaper
/// and the scene-demo apps; std::nullopt for unknown names (app_by_name()
/// would abort).
[[nodiscard]] std::optional<apps::AppSpec> find_app(const std::string& name);

}  // namespace ccdem::check
