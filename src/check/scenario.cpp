#include "check/scenario.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <sstream>

#include "apps/app_profiles.h"
#include "apps/scene_dsl.h"
#include "fault/fault_plan.h"
#include "input/script_io.h"

namespace ccdem::check {

namespace {

constexpr const char* kSchema = "ccdem-repro-v1";

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Strict numeric parsing, same rules as config_io: the whole value must be
// consumed, doubles must be finite.
std::optional<long long> parse_int_strict(const std::string& v) {
  long long out = 0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || v.empty()) return std::nullopt;
  return out;
}

std::optional<unsigned long long> parse_u64_strict(const std::string& v) {
  unsigned long long out = 0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || v.empty()) return std::nullopt;
  return out;
}

std::optional<double> parse_double_strict(const std::string& v) {
  double out = 0.0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || v.empty()) return std::nullopt;
  if (!std::isfinite(out)) return std::nullopt;
  return out;
}

std::optional<bool> parse_bool_strict(const std::string& v) {
  if (v == "0") return false;
  if (v == "1") return true;
  return std::nullopt;
}

/// Shortest round-trip decimal (std::to_chars default), so alpha = 0.5
/// serializes as "0.5", not seventeen digits.
std::string double_to_string(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc{});
  return std::string(buf, ptr);
}

std::optional<core::GridSpec> parse_grid(const std::string& v) {
  if (v == "2k") return core::GridSpec::grid_2k();
  if (v == "4k") return core::GridSpec::grid_4k();
  if (v == "9k") return core::GridSpec::grid_9k();
  if (v == "36k") return core::GridSpec::grid_36k();
  if (v == "full") return core::GridSpec::full_720p();
  return std::nullopt;
}

std::optional<std::vector<int>> parse_rate_list(const std::string& v) {
  std::vector<int> rates;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const auto comma = v.find(',', pos);
    const std::string item =
        trim(v.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos));
    const auto hz = parse_int_strict(item);
    if (!hz || *hz <= 0 || *hz > 1000) return std::nullopt;
    rates.push_back(static_cast<int>(*hz));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (rates.empty()) return std::nullopt;
  return rates;
}

std::optional<FaultClasses> parse_fault_classes(const std::string& v) {
  FaultClasses fc{false, false, false, false, false};
  if (v == "none") return fc;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const auto comma = v.find(',', pos);
    const std::string item =
        trim(v.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos));
    if (item == "switching") fc.switching = true;
    else if (item == "stuck") fc.stuck = true;
    else if (item == "capability") fc.capability = true;
    else if (item == "touch") fc.touch = true;
    else if (item == "meter") fc.meter = true;
    else return std::nullopt;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return fc;
}

std::optional<PressureClasses> parse_pressure_classes(const std::string& v) {
  PressureClasses pc{false, false, false};
  if (v == "none") return pc;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const auto comma = v.find(',', pos);
    const std::string item =
        trim(v.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos));
    if (item == "thermal") pc.thermal = true;
    else if (item == "brownout") pc.brownout = true;
    else if (item == "jitter") pc.jitter = true;
    else return std::nullopt;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return pc;
}

std::string pressure_classes_to_string(const PressureClasses& pc) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
  if (pc.thermal) add("thermal");
  if (pc.brownout) add("brownout");
  if (pc.jitter) add("jitter");
  return out.empty() ? "none" : out;
}

std::string fault_classes_to_string(const FaultClasses& fc) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
  if (fc.switching) add("switching");
  if (fc.stuck) add("stuck");
  if (fc.capability) add("capability");
  if (fc.touch) add("touch");
  if (fc.meter) add("meter");
  return out.empty() ? "none" : out;
}

bool set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

std::optional<apps::AppSpec> find_app(const std::string& name) {
  return apps::find_profile(name);
}

core::GridSpec Scenario::grid_spec() const {
  const auto g = parse_grid(grid);
  assert(g && "invalid grid keyword; parse_scenario validates this");
  return *g;
}

harness::ExperimentConfig Scenario::experiment_config() const {
  const auto spec = find_app(app);
  assert(spec && "unknown app; parse_scenario validates this");
  harness::ExperimentConfig cfg;
  cfg.app = *spec;
  if (!scene.empty()) {
    const auto ss = apps::scene_spec_from_string(scene, nullptr);
    assert(ss && "invalid scene DSL; parse_scenario validates this");
    cfg.app.scene = *ss;
  }
  cfg.mode = mode;
  if (mode == device::ControlMode::kPipeline) {
    const auto ps = core::PipelineSpec::parse(pipeline, nullptr);
    assert(ps && "invalid pipeline spec; parse_scenario validates this");
    cfg.pipeline = *ps;
  }
  cfg.duration = duration();
  cfg.seed = seed;
  cfg.dpm.meter.grid = grid_spec();
  cfg.dpm.meter.eval_period = sim::milliseconds(eval_ms);
  cfg.dpm.boost_hold = sim::milliseconds(boost_hold_ms);
  cfg.dpm.meter.window = sim::milliseconds(meter_window_ms);
  cfg.dpm.section_alpha = alpha;
  cfg.dpm.min_hz = min_hz;
  cfg.dpm.boost_hz = boost_hz;
  // The E3 governor shares the metering knobs, so one scenario drives both
  // controller families.
  cfg.governor.meter = cfg.dpm.meter;
  cfg.rates = display::RefreshRateSet(rates);
  cfg.baseline_hz = baseline_hz;
  cfg.fast_rate_up = fast_rate_up;
  if (fault_scale > 0.0) {
    fault::FaultPlan plan = fault::FaultPlan::nominal().scaled(fault_scale);
    if (!fault_classes.switching) {
      plan.switch_nak_p = 0.0;
      plan.switch_delay_p = 0.0;
    }
    if (!fault_classes.stuck) plan.stuck_per_s = 0.0;
    if (!fault_classes.capability) plan.capability_loss_per_s = 0.0;
    if (!fault_classes.touch) {
      plan.touch_drop_p = 0.0;
      plan.touch_dup_p = 0.0;
      plan.touch_delay_p = 0.0;
    }
    if (!fault_classes.meter) plan.meter_bitflip_p = 0.0;
    if (fault_until_ms > 0) {
      plan.active_until = sim::Time{sim::milliseconds(fault_until_ms).ticks};
    }
    cfg.fault = plan;
  }
  if (pressure_scale > 0.0) {
    // Overlay the pressure half onto whatever the fault half set above --
    // the two halves never write the same fields.
    const fault::FaultPlan p =
        fault::FaultPlan::pressure_nominal().scaled(pressure_scale);
    if (pressure_classes.thermal) cfg.fault.thermal_per_s = p.thermal_per_s;
    if (pressure_classes.brownout) cfg.fault.brownout_per_s = p.brownout_per_s;
    if (pressure_classes.jitter) cfg.fault.jitter_per_s = p.jitter_per_s;
    if (pressure_until_ms > 0) {
      cfg.fault.pressure_until =
          sim::Time{sim::milliseconds(pressure_until_ms).ticks};
    }
  }
  cfg.script = script;
  return cfg;
}

std::string scenario_to_string(const Scenario& s) {
  std::ostringstream os;
  os << "schema = " << kSchema << "\n";
  os << "app = " << s.app << "\n";
  os << "mode = " << device::control_mode_keyword(s.mode) << "\n";
  if (s.mode == device::ControlMode::kPipeline) {
    os << "pipeline = " << s.pipeline << "\n";
  }
  os << "duration_ms = " << s.duration_ms << "\n";
  os << "seed = " << s.seed << "\n";
  os << "grid = " << s.grid << "\n";
  os << "eval_ms = " << s.eval_ms << "\n";
  os << "boost_hold_ms = " << s.boost_hold_ms << "\n";
  os << "meter_window_ms = " << s.meter_window_ms << "\n";
  os << "alpha = " << double_to_string(s.alpha) << "\n";
  os << "rates = ";
  for (std::size_t i = 0; i < s.rates.size(); ++i) {
    if (i != 0) os << ",";
    os << s.rates[i];
  }
  os << "\n";
  os << "baseline_hz = " << s.baseline_hz << "\n";
  os << "min_hz = " << s.min_hz << "\n";
  os << "boost_hz = " << s.boost_hz << "\n";
  os << "fast_rate_up = " << (s.fast_rate_up ? 1 : 0) << "\n";
  os << "fault_scale = " << double_to_string(s.fault_scale) << "\n";
  if (s.fault_scale > 0.0) {
    os << "fault_until_ms = " << s.fault_until_ms << "\n";
    os << "fault_classes = " << fault_classes_to_string(s.fault_classes)
       << "\n";
  }
  // Unlike fault_scale, the pressure keys are omitted entirely at zero so
  // every pre-pressure repro and golden stays byte-identical.
  if (s.pressure_scale > 0.0) {
    os << "pressure_scale = " << double_to_string(s.pressure_scale) << "\n";
    os << "pressure_until_ms = " << s.pressure_until_ms << "\n";
    os << "pressure_classes = "
       << pressure_classes_to_string(s.pressure_classes) << "\n";
  }
  os << "fleet = " << (s.fleet ? 1 : 0) << "\n";
  // Like the pressure keys, the scene block only exists when a scene
  // override does, so pre-scene repro files stay byte-identical.
  if (!s.scene.empty()) {
    os << "begin_scene\n";
    os << s.scene;
    os << "end_scene\n";
  }
  if (s.script) {
    os << "begin_script\n";
    os << input::script_to_string(*s.script);
    os << "end_script\n";
  }
  return os.str();
}

std::string repro_to_string(const Scenario& s,
                            const std::vector<std::string>& failures) {
  std::ostringstream os;
  for (const std::string& f : failures) {
    // One comment line per failure; newlines inside a message would escape
    // the comment, so flatten them.
    std::string flat = f;
    for (char& c : flat) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    os << "# failure: " << flat << "\n";
  }
  os << scenario_to_string(s);
  return os.str();
}

std::optional<Scenario> parse_scenario(const std::string& text,
                                       std::string* error) {
  Scenario s;
  // Fields with context-dependent defaults start cleared; serialization
  // always writes them, so a missing key means a hand-edited file.
  bool have_schema = false;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  bool have_script = false;
  bool have_scene = false;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string raw = trim(line);
    if (raw == "begin_scene") {
      if (have_scene) {
        set_error(error, "line " + std::to_string(line_no) +
                             ": duplicate begin_scene");
        return std::nullopt;
      }
      std::string scene_text;
      bool closed = false;
      while (std::getline(is, line)) {
        ++line_no;
        if (trim(line) == "end_scene") {
          closed = true;
          break;
        }
        scene_text += line;
        scene_text += "\n";
      }
      if (!closed) {
        set_error(error, "unterminated begin_scene block");
        return std::nullopt;
      }
      std::string scene_error;
      const auto scene = apps::scene_spec_from_string(scene_text,
                                                      &scene_error);
      if (!scene) {
        set_error(error, "embedded scene: " + scene_error);
        return std::nullopt;
      }
      // Canonical rendering, so round-trip is byte-exact regardless of the
      // input's spacing.
      s.scene = apps::scene_spec_to_string(*scene);
      have_scene = true;
      continue;
    }
    if (raw == "begin_script") {
      if (have_script) {
        set_error(error, "line " + std::to_string(line_no) +
                             ": duplicate begin_script");
        return std::nullopt;
      }
      std::string script_text;
      bool closed = false;
      while (std::getline(is, line)) {
        ++line_no;
        if (trim(line) == "end_script") {
          closed = true;
          break;
        }
        script_text += line;
        script_text += "\n";
      }
      if (!closed) {
        set_error(error, "unterminated begin_script block");
        return std::nullopt;
      }
      std::string script_error;
      auto script = input::script_from_string(script_text, &script_error);
      if (!script) {
        set_error(error, "embedded script: " + script_error);
        return std::nullopt;
      }
      s.script = std::move(*script);
      have_script = true;
      continue;
    }
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      set_error(error, "line " + std::to_string(line_no) + ": expected '='");
      return std::nullopt;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto bad_value = [&] {
      set_error(error, "line " + std::to_string(line_no) + ": bad value '" +
                           value + "' for key '" + key + "'");
      return std::nullopt;
    };

    if (key == "schema") {
      if (value != kSchema) return bad_value();
      have_schema = true;
    } else if (key == "app") {
      if (!find_app(value)) return bad_value();
      s.app = value;
    } else if (key == "mode") {
      const auto m = device::control_mode_from_keyword(value);
      if (!m) return bad_value();
      s.mode = *m;
    } else if (key == "pipeline") {
      std::string spec_error;
      const auto ps = core::PipelineSpec::parse(value, &spec_error);
      if (!ps) {
        set_error(error,
                  "line " + std::to_string(line_no) + ": " + spec_error);
        return std::nullopt;
      }
      // Canonical rendering, so round-trip is byte-exact regardless of the
      // input's spacing.
      s.pipeline = ps->to_string();
    } else if (key == "duration_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms <= 0 || *ms > 600'000) return bad_value();
      s.duration_ms = *ms;
    } else if (key == "seed") {
      const auto v = parse_u64_strict(value);
      if (!v) return bad_value();
      s.seed = *v;
    } else if (key == "grid") {
      if (!parse_grid(value)) return bad_value();
      s.grid = value;
    } else if (key == "eval_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms <= 0 || *ms > 10'000) return bad_value();
      s.eval_ms = *ms;
    } else if (key == "boost_hold_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms < 0 || *ms > 60'000) return bad_value();
      s.boost_hold_ms = *ms;
    } else if (key == "meter_window_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms <= 0 || *ms > 60'000) return bad_value();
      s.meter_window_ms = *ms;
    } else if (key == "alpha") {
      const auto a = parse_double_strict(value);
      if (!a || *a < 0.0 || *a > 1.0) return bad_value();
      s.alpha = *a;
    } else if (key == "rates") {
      const auto r = parse_rate_list(value);
      if (!r) return bad_value();
      s.rates = *r;
    } else if (key == "baseline_hz") {
      const auto hz = parse_int_strict(value);
      if (!hz || *hz < 0 || *hz > 1000) return bad_value();
      s.baseline_hz = static_cast<int>(*hz);
    } else if (key == "min_hz") {
      const auto hz = parse_int_strict(value);
      if (!hz || *hz < 0 || *hz > 1000) return bad_value();
      s.min_hz = static_cast<int>(*hz);
    } else if (key == "boost_hz") {
      const auto hz = parse_int_strict(value);
      if (!hz || *hz < 0 || *hz > 1000) return bad_value();
      s.boost_hz = static_cast<int>(*hz);
    } else if (key == "fast_rate_up") {
      const auto b = parse_bool_strict(value);
      if (!b) return bad_value();
      s.fast_rate_up = *b;
    } else if (key == "fault_scale") {
      const auto f = parse_double_strict(value);
      if (!f || *f < 0.0 || *f > 100.0) return bad_value();
      s.fault_scale = *f;
    } else if (key == "fault_until_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms < 0 || *ms > 600'000) return bad_value();
      s.fault_until_ms = *ms;
    } else if (key == "fault_classes") {
      const auto fc = parse_fault_classes(value);
      if (!fc) return bad_value();
      s.fault_classes = *fc;
    } else if (key == "pressure_scale") {
      const auto f = parse_double_strict(value);
      if (!f || *f < 0.0 || *f > 100.0) return bad_value();
      s.pressure_scale = *f;
    } else if (key == "pressure_until_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms < 0 || *ms > 600'000) return bad_value();
      s.pressure_until_ms = *ms;
    } else if (key == "pressure_classes") {
      const auto pc = parse_pressure_classes(value);
      if (!pc) return bad_value();
      s.pressure_classes = *pc;
    } else if (key == "fleet") {
      const auto b = parse_bool_strict(value);
      if (!b) return bad_value();
      s.fleet = *b;
    } else {
      set_error(error,
                "line " + std::to_string(line_no) + ": unknown key '" + key +
                    "'");
      return std::nullopt;
    }
  }
  if (!have_schema) {
    set_error(error, "missing required key 'schema'");
    return std::nullopt;
  }
  // Cross-field validation, as in config_io: rung references must be in the
  // ladder (keys may arrive in any order, so this runs after the whole
  // parse).
  const display::RefreshRateSet ladder{s.rates};
  const auto check_in_rates = [&](const char* key, int hz) {
    if (hz > 0 && !ladder.supports(hz)) {
      set_error(error, std::string(key) + " = " + std::to_string(hz) +
                           " is not in the configured rate set");
      return false;
    }
    return true;
  };
  if (!check_in_rates("baseline_hz", s.baseline_hz) ||
      !check_in_rates("min_hz", s.min_hz) ||
      !check_in_rates("boost_hz", s.boost_hz)) {
    return std::nullopt;
  }
  if (s.mode == device::ControlMode::kPipeline && s.pipeline.empty()) {
    set_error(error, "mode = pipeline requires a 'pipeline' key");
    return std::nullopt;
  }
  if (s.mode != device::ControlMode::kPipeline && !s.pipeline.empty()) {
    set_error(error, "'pipeline' is only valid with mode = pipeline");
    return std::nullopt;
  }
  // A clean scenario must not carry fault-only keys into the canonical form.
  if (s.fault_scale == 0.0) {
    s.fault_until_ms = 0;
    s.fault_classes = FaultClasses{};
  }
  if (s.pressure_scale == 0.0) {
    s.pressure_until_ms = 0;
    s.pressure_classes = PressureClasses{};
  }
  return s;
}

}  // namespace ccdem::check
