// Greedy scenario minimizer: shrink a failing Scenario while it keeps
// failing.
//
// The predicate runs the scenario through whatever check caught the original
// failure and returns the failure message, or std::nullopt when the
// candidate passes.  Any failure counts -- standard delta-debugging
// practice: the minimal input may fail differently than the original, and
// that smaller failure is the one worth debugging first.
//
// Shrinking is a fixpoint of cheap-first passes:
//   1. halve the duration (the single biggest replay-cost lever),
//   2. drop the fleet arm, zero the fault plan / single fault classes,
//   3. walk the mode ladder down (hysteresis -> boost -> plain section),
//   4. materialize the Monkey script into the scenario and delta-debug the
//      gesture list (so the final repro carries its own, minimal script),
//   5. drop or shrink the scene override (state-graph shrinking: drop
//      states, halve dwells, straighten transitions into self-loops; for
//      burst video, thin the motion list and halve the burst and gap),
//   6. reset tuning scalars to defaults and thin the rate ladder.
// Every accepted step re-validates with the predicate, so the result is
// always a genuinely failing scenario.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "check/scenario.h"

namespace ccdem::check {

/// Runs one candidate; a returned string means "still fails (with this
/// message)".
using FailurePredicate =
    std::function<std::optional<std::string>(const Scenario&)>;

struct MinimizeOptions {
  /// Hard cap on predicate invocations (each one replays an experiment).
  int max_attempts = 500;
  /// Durations are not halved below this floor.
  std::int64_t min_duration_ms = 250;
};

struct MinimizeResult {
  Scenario scenario;    ///< smallest failing scenario found
  std::string failure;  ///< its failure message
  int attempts = 0;     ///< predicate invocations spent
  int accepted = 0;     ///< shrink steps that kept failing
};

/// `failing` must fail the predicate (it is re-run first; if it passes, the
/// result is `failing` itself with an empty failure message).
[[nodiscard]] MinimizeResult minimize_scenario(const Scenario& failing,
                                               const FailurePredicate& predicate,
                                               const MinimizeOptions& options = {});

}  // namespace ccdem::check
