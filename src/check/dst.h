// DST driver: run one Scenario through every oracle and invariant, or fuzz
// a whole seeded campaign.
//
// check_scenario() is the single entry the tests, the corpus replayer and
// the minimizer predicate all share: it expands the scenario, runs the real
// SimulatedDevice, and applies
//   * the differential oracles (oracles.h): determinism, culled-vs-unculled
//     meter, spans-off counter identity, fleet-vs-serial, Equation (1)
//     brute-force reference,
//   * the trace invariants (invariants.h),
//   * the display-quality gate (I4): on clean proposed-system runs, a
//     baseline-60 Hz arm with the same seed/script is run and
//     metrics::compare_quality must stay above the gate.
//
// run_fuzz() drives a ScenarioGen over check_scenario and greedily
// minimizes every failure, so what comes out is ready to be written as a
// `.repro` file (scenario.h's repro_to_string).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/minimizer.h"
#include "check/scenario.h"
#include "check/scenario_gen.h"

namespace ccdem::check {

struct CheckOptions {
  bool oracle_determinism = true;
  bool oracle_unculled = true;
  bool oracle_spans_off = true;
  /// Fleet oracle runs only when the scenario's `fleet` flag is set, too.
  bool oracle_fleet = true;
  /// Forced-scalar kernel table vs the CPU-selected one: byte-identical
  /// everything, serialized trace included.  Skipped (trivially true) when
  /// the active table already is the scalar one.
  bool oracle_kernel = true;
  /// Tile-memoization on vs off: identical results, frame hashes and
  /// counters except meter work (meter.pixels_*) and the memo accounting
  /// itself (flinger.memo.*).
  bool oracle_tile_memo = true;
  bool oracle_reference = true;
  bool invariants = true;
  /// I4: clean proposed-system scenarios get a baseline-60 quality arm.
  bool quality_arm = true;
  /// Minimum metrics display quality (delivered/actual %, see I4).  This is
  /// a liveness floor, not the paper's headline figure: a randomized
  /// scenario may legitimately combine an aggressive alpha with a sparse
  /// ladder.
  double quality_gate_pct = 30.0;
  /// I8 steady-state arm: pressured scenarios whose episodes end mid-run
  /// with enough tail get a pressure-free arm; the post-recovery tail's
  /// delivered quality relative to that arm must stay above the gate and
  /// the tail's mean refresh rate within the tolerance (a ladder stuck on a
  /// high rung shows up as a parked-low refresh rate).
  bool pressure_recovery_arm = true;
  double recovery_quality_pct = 85.0;
  double recovery_rate_tolerance_hz = 12.0;
  InvariantOptions invariant_options{};
};

struct CheckReport {
  std::vector<std::string> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// One line per failure, for logs and `.repro` headers.
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] CheckReport check_scenario(const Scenario& s,
                                         const CheckOptions& options = {});

/// Adapts check_scenario into the minimizer's predicate: returns the first
/// failure message, or std::nullopt when the candidate passes.
[[nodiscard]] FailurePredicate make_failure_predicate(CheckOptions options);

struct FuzzOptions {
  std::uint64_t seed = 1;
  int scenarios = 50;
  ScenarioGen::Options gen{};
  CheckOptions check{};
  bool minimize = true;
  MinimizeOptions minimize_options{};
  /// Stop the campaign after this many distinct failing scenarios.
  int max_failures = 3;
  /// Optional progress stream (one line per scenario).
  std::ostream* log = nullptr;
};

struct FuzzFailure {
  std::uint64_t index = 0;     ///< 0-based position in the campaign
  Scenario scenario;           ///< as sampled
  std::vector<std::string> failures;
  Scenario minimized;          ///< == scenario when minimization is off
  std::string minimized_failure;
  int shrink_attempts = 0;
};

struct FuzzReport {
  int scenarios_run = 0;
  std::vector<FuzzFailure> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace ccdem::check
