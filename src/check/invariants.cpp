#include "check/invariants.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "core/display_power_manager.h"
#include "device/simulated_device.h"
#include "fault/fault_plan.h"
#include "display/refresh_rate.h"
#include "input/monkey.h"
#include "sim/rng.h"

namespace ccdem::check {

namespace {

std::optional<std::uint64_t> find_counter(const obs::Counters::Snapshot& snap,
                                          std::string_view name) {
  const auto it = std::lower_bound(
      snap.counters.begin(), snap.counters.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it == snap.counters.end() || it->first != name) return std::nullopt;
  return it->second;
}

bool has_counter_with_prefix(const obs::Counters::Snapshot& snap,
                             std::string_view prefix, std::string* name) {
  for (const auto& [n, v] : snap.counters) {
    if (n.rfind(prefix, 0) == 0) {
      if (name != nullptr) *name = n;
      return true;
    }
  }
  return false;
}

/// Max of a step signal over (lo, hi]: the held value entering the window
/// plus every point recorded inside it.
double max_step_over(const sim::Trace& step, sim::Time lo, sim::Time hi,
                     double fallback) {
  double m = step.value_at(lo, fallback);
  for (const sim::TracePoint& p : step.points()) {
    if (p.t.ticks > lo.ticks && p.t.ticks <= hi.ticks) m = std::max(m, p.value);
  }
  return m;
}

/// True when the ring may have wrapped, i.e. the retained spans are not the
/// complete stream and count-based span checks would be unsound.
bool spans_maybe_dropped(const RunArtifacts& r) {
  return r.spans.size() >= obs::SpanRecorder::kDefaultCapacity;
}

std::uint64_t count_phase(const RunArtifacts& r, obs::Phase phase) {
  std::uint64_t n = 0;
  for (const obs::Span& s : r.spans) {
    if (s.phase == phase) ++n;
  }
  return n;
}

}  // namespace

TraceInvariantChecker::TraceInvariantChecker(Scenario scenario,
                                             InvariantOptions options)
    : scenario_(std::move(scenario)), options_(options) {}

std::vector<std::string> TraceInvariantChecker::check(
    const RunArtifacts& culled, const RunArtifacts* unculled) const {
  std::vector<std::string> out;
  check_refresh_floor(culled, out);
  check_touch_boost(culled, out);
  check_recovery(culled, out);
  check_meter_accounting(culled, unculled, out);
  check_counter_graph(culled, out);
  check_span_stream(culled, out);
  check_ladder_order(culled, out);
  check_ladder_return(culled, out);
  return out;
}

void TraceInvariantChecker::check_refresh_floor(
    const RunArtifacts& r, std::vector<std::string>& out) const {
  const display::RefreshRateSet ladder{scenario_.rates};
  const double max_hz = static_cast<double>(ladder.max_hz());
  const auto& refresh = r.result.refresh_rate;

  // Ground-truth content rate: the recorder's 1 s buckets, each labeled at
  // its START and covering [t, t + 1 s).  A point above every refresh rate
  // the panel ran during that bucket claims frames the panel never
  // presented.
  const auto& content_points = r.result.content_rate.points();
  for (std::size_t i = 0; i < content_points.size(); ++i) {
    const sim::TracePoint& p = content_points[i];
    const sim::Time hi = p.t + sim::milliseconds(1100);
    const double cap = max_step_over(refresh, p.t, hi, max_hz);
    // The final bucket is partial: its count is scaled by a span as short
    // as 50 ms, which inflates the one-frame fence-post error to 1/span.
    double slack = options_.rate_slack_hz;
    if (i + 1 == content_points.size()) {
      const double span_s =
          std::max(0.05, (sim::Time{r.result.duration.ticks} - p.t).seconds());
      slack += 1.5 / span_s;
    }
    if (p.value > cap + slack) {
      std::ostringstream os;
      os << "I1 refresh floor: content rate " << p.value << " fps at "
         << p.t.ticks << "us exceeds max refresh " << cap
         << " Hz over its window";
      out.push_back(os.str());
    }
  }

  // The meter's view, same law over its own (configurable) window, sampled
  // at evaluation ticks.
  const double w_s =
      static_cast<double>(scenario_.meter_window_ms) / 1000.0;
  if (w_s <= 0.0) return;
  const double slack = options_.rate_slack_hz + 3.0 / w_s;
  const sim::Duration lookback =
      sim::milliseconds(scenario_.meter_window_ms + scenario_.eval_ms);
  for (const sim::TracePoint& p : r.result.measured_content_rate.points()) {
    const double cap = max_step_over(refresh, p.t - lookback, p.t, max_hz);
    if (p.value > cap + slack) {
      std::ostringstream os;
      os << "I1 refresh floor: measured content rate " << p.value
         << " fps at " << p.t.ticks << "us exceeds max refresh " << cap
         << " Hz over its window";
      out.push_back(os.str());
    }
  }
}

void TraceInvariantChecker::check_touch_boost(
    const RunArtifacts& r, std::vector<std::string>& out) const {
  using device::ControlMode;
  // Boost is wired only in these modes (or in an explicit composition that
  // includes the boost stage); fault runs may legitimately drop the very
  // touch event the window keys on (fault.touch_dropped), and capability
  // faults can revoke the boost rung.
  bool boosted_mode = scenario_.mode == ControlMode::kSectionWithBoost ||
                      scenario_.mode == ControlMode::kSectionHysteresis;
  if (scenario_.mode == ControlMode::kPipeline) {
    const auto spec = core::PipelineSpec::parse(scenario_.pipeline, nullptr);
    boosted_mode = spec && spec->contains(core::StageId::kBoost);
  }
  if (!boosted_mode) return;
  if (scenario_.fault_scale != 0.0) return;
  // Under pressure the degradation ladder legitimately sheds the boost
  // (rung 1) before anything else, so the window guarantee is off.
  if (scenario_.pressure_scale != 0.0) return;
  if (!obs::SpanRecorder::compiled_in() || spans_maybe_dropped(r)) return;

  const display::RefreshRateSet ladder{scenario_.rates};
  const int boost_target =
      scenario_.boost_hz > 0 && ladder.supports(scenario_.boost_hz)
          ? scenario_.boost_hz
          : ladder.max_hz();

  // The gesture list is the embedded script, or the seed's Monkey script
  // regenerated exactly as the device does it.
  std::vector<input::TouchGesture> gestures;
  if (scenario_.script) {
    gestures = *scenario_.script;
  } else {
    const auto app = find_app(scenario_.app);
    if (!app) return;
    const sim::Rng root{scenario_.seed};
    sim::Rng monkey = root.fork(device::SimulatedDevice::kMonkeyRngStream);
    gestures = input::generate_monkey_script(
        monkey, app->monkey, scenario_.duration(), apps::kGalaxyS3Screen);
  }
  if (gestures.empty()) return;

  const sim::Duration hold = sim::milliseconds(scenario_.boost_hold_ms);
  for (const obs::Span& sp : r.spans) {
    if (sp.phase != obs::Phase::kGovern) continue;
    // Strictly after the touch-down (same-tick delivery order between the
    // dispatcher and an evaluation tick is unspecified) and within the hold.
    const bool boosted = std::any_of(
        gestures.begin(), gestures.end(), [&](const input::TouchGesture& g) {
          return g.start.ticks < sp.begin.ticks &&
                 sp.begin.ticks <= (g.start + hold).ticks;
        });
    if (boosted && sp.arg < boost_target) {
      std::ostringstream os;
      os << "I2 touch boost: evaluation at " << sp.begin.ticks
         << "us targets " << sp.arg << " Hz inside a boost window (expected >= "
         << boost_target << " Hz)";
      out.push_back(os.str());
    }
  }
}

void TraceInvariantChecker::check_recovery(const RunArtifacts& r,
                                           std::vector<std::string>& out) const {
  if (scenario_.pressure_scale == 0.0) {
    // The pressure plane's zero-cost contract, independent of the fault
    // half: no pressure scale, no pressure/ladder instrumentation.
    std::string name;
    if (has_counter_with_prefix(r.counters, "pressure.", &name) ||
        has_counter_with_prefix(r.counters, "degrade.", &name) ||
        has_counter_with_prefix(r.counters, "policy.degrade.", &name)) {
      out.push_back("I3 recovery: pressure-free run registered counter '" +
                    name + "'");
    }
  }
  if (scenario_.fault_scale == 0.0) {
    // A clean run must not even register fault or recovery instrumentation:
    // the injector is absent and the DPM's recovery plane stays off.
    std::string name;
    if (has_counter_with_prefix(r.counters, "fault.", &name) ||
        has_counter_with_prefix(r.counters, "dpm.retries", &name) ||
        has_counter_with_prefix(r.counters, "dpm.retry_giveups", &name) ||
        has_counter_with_prefix(r.counters, "dpm.watchdog_fallbacks", &name) ||
        has_counter_with_prefix(r.counters, "dpm.safe_mode", &name)) {
      out.push_back("I3 recovery: clean run registered counter '" + name +
                    "'");
    }
    return;
  }

  const auto entries = find_counter(r.counters, "dpm.safe_mode_entries");
  if (!entries) return;  // no recovery plane in this mode (baseline / e3)
  const std::uint64_t giveups =
      find_counter(r.counters, "dpm.retry_giveups").value_or(0);
  const std::uint64_t fallbacks =
      find_counter(r.counters, "dpm.watchdog_fallbacks").value_or(0);
  const std::uint64_t rearms =
      find_counter(r.counters, "dpm.safe_mode_rearms").value_or(0);
  const auto streak =
      static_cast<std::uint64_t>(core::RecoveryConfig{}.safe_mode_after);
  if (*entries * streak > giveups + fallbacks) {
    std::ostringstream os;
    os << "I3 recovery: " << *entries << " safe-mode entries require >= "
       << *entries * streak << " faults, but only " << giveups
       << " give-ups + " << fallbacks << " watchdog fallbacks happened";
    out.push_back(os.str());
  }
  if (rearms > *entries) {
    std::ostringstream os;
    os << "I3 recovery: " << rearms << " safe-mode re-arms exceed " << *entries
       << " entries";
    out.push_back(os.str());
  }
}

void TraceInvariantChecker::check_meter_accounting(
    const RunArtifacts& culled, const RunArtifacts* unculled,
    std::vector<std::string>& out) const {
  const auto frames = find_counter(culled.counters, "meter.frames");
  if (!frames || *frames == 0) return;  // baseline mode runs no meter
  const auto n =
      static_cast<std::uint64_t>(scenario_.grid_spec().sample_count());
  // Every classified frame after the priming capture accounts for the whole
  // grid: compared in the damage, skipped outside it.
  const std::uint64_t budget = (*frames - 1) * n;
  const std::uint64_t compared =
      find_counter(culled.counters, "meter.pixels_compared").value_or(0);
  const std::uint64_t skipped =
      find_counter(culled.counters, "meter.pixels_compare_skipped")
          .value_or(0);
  if (compared + skipped != budget) {
    std::ostringstream os;
    os << "I5 meter work: culled compared " << compared << " + skipped "
       << skipped << " != " << budget << " (" << *frames - 1 << " frames x "
       << n << " samples)";
    out.push_back(os.str());
  }

  if (unculled == nullptr) return;
  const std::uint64_t u_frames =
      find_counter(unculled->counters, "meter.frames").value_or(0);
  const std::uint64_t u_compared =
      find_counter(unculled->counters, "meter.pixels_compared").value_or(0);
  const std::uint64_t u_skipped =
      find_counter(unculled->counters, "meter.pixels_compare_skipped")
          .value_or(0);
  if (u_skipped != 0) {
    std::ostringstream os;
    os << "I5 meter work: unculled reference skipped " << u_skipped
       << " samples";
    out.push_back(os.str());
  }
  // Early-exit compare: at most the whole grid per classified frame.
  if (u_frames >= 1 && u_compared > (u_frames - 1) * n) {
    std::ostringstream os;
    os << "I5 meter work: unculled compared " << u_compared
       << " samples, more than " << (u_frames - 1) * n << " available";
    out.push_back(os.str());
  }
}

void TraceInvariantChecker::check_counter_graph(
    const RunArtifacts& r, std::vector<std::string>& out) const {
  const auto expect_eq = [&](std::string_view name, std::uint64_t want,
                             const char* what) {
    const auto got = find_counter(r.counters, name);
    if (!got) {
      out.push_back(std::string("I6 counters: '") + std::string(name) +
                    "' was never registered");
      return;
    }
    if (*got != want) {
      std::ostringstream os;
      os << "I6 counters: " << name << " = " << *got << " but " << what
         << " = " << want;
      out.push_back(os.str());
    }
  };

  const std::uint64_t composed = r.result.frames_composed;
  expect_eq("flinger.frames_composed", composed, "result.frames_composed");
  expect_eq("flinger.content_frames", r.result.content_frames,
            "result.content_frames");
  expect_eq("recorder.frames", composed, "result.frames_composed");
  expect_eq("recorder.content_frames", r.result.content_frames,
            "result.content_frames");
  expect_eq("panel.rate_changes", r.result.rate_switches,
            "result.rate_switches");

  const std::uint64_t content =
      find_counter(r.counters, "flinger.content_frames").value_or(0);
  const std::uint64_t redundant =
      find_counter(r.counters, "flinger.redundant_frames").value_or(0);
  if (content + redundant != composed) {
    std::ostringstream os;
    os << "I6 counters: content " << content << " + redundant " << redundant
       << " != composed " << composed;
    out.push_back(os.str());
  }

  const std::uint64_t vsyncs =
      find_counter(r.counters, "panel.vsyncs").value_or(0);
  if (vsyncs < composed) {
    std::ostringstream os;
    os << "I6 counters: " << vsyncs << " vsyncs < " << composed
       << " composed frames";
    out.push_back(os.str());
  }

  // Memo accounting: every logically composed pixel was either physically
  // written or proven unchanged and skipped -- in both memo modes (with
  // memoization off, written == composed and skipped == 0).
  if (const auto written =
          find_counter(r.counters, "flinger.memo.pixels_written")) {
    const std::uint64_t skipped =
        find_counter(r.counters, "flinger.memo.pixels_skipped").value_or(0);
    const std::uint64_t pixels =
        find_counter(r.counters, "flinger.pixels_composed").value_or(0);
    if (*written + skipped != pixels) {
      std::ostringstream os;
      os << "I6 counters: memo pixels_written " << *written << " + skipped "
         << skipped << " != pixels_composed " << pixels;
      out.push_back(os.str());
    }
    const std::uint64_t memo_frames =
        find_counter(r.counters, "flinger.memo.frames_memoized").value_or(0);
    if (memo_frames > composed) {
      std::ostringstream os;
      os << "I6 counters: " << memo_frames << " memoized frames > "
         << composed << " composed";
      out.push_back(os.str());
    }
  }

  if (const auto meter_frames = find_counter(r.counters, "meter.frames")) {
    if (*meter_frames != composed) {
      std::ostringstream os;
      os << "I6 counters: meter.frames = " << *meter_frames << " but "
         << composed << " frames were composed";
      out.push_back(os.str());
    }
    const std::uint64_t meaningful =
        find_counter(r.counters, "meter.meaningful_frames").value_or(0);
    if (meaningful > *meter_frames) {
      std::ostringstream os;
      os << "I6 counters: " << meaningful << " meaningful frames > "
         << *meter_frames << " metered frames";
      out.push_back(os.str());
    }
  }
}

void TraceInvariantChecker::check_span_stream(
    const RunArtifacts& r, std::vector<std::string>& out) const {
  if (!obs::SpanRecorder::compiled_in() || r.spans.empty()) return;
  if (spans_maybe_dropped(r)) return;  // ring wrapped: counts are partial

  const auto expect_count = [&](obs::Phase phase, std::uint64_t want,
                                const char* what) {
    const std::uint64_t got = count_phase(r, phase);
    if (got != want) {
      std::ostringstream os;
      os << "I6 spans: " << got << " " << obs::phase_name(phase)
         << " spans but " << what << " = " << want;
      out.push_back(os.str());
    }
  };

  expect_count(obs::Phase::kCompose, r.result.frames_composed,
               "frames composed");
  expect_count(obs::Phase::kPanelPresent, r.result.frames_composed,
               "frames composed");
  if (const auto meter_frames = find_counter(r.counters, "meter.frames")) {
    expect_count(obs::Phase::kMeter, *meter_frames, "meter.frames");
  }
  const std::uint64_t evals =
      find_counter(r.counters, "dpm.evaluations").value_or(0) +
      find_counter(r.counters, "governor.evaluations").value_or(0);
  expect_count(obs::Phase::kGovern, evals, "controller evaluations");
  // The DPM runs the policy pipeline exactly once per evaluation, and the
  // pipeline stamps exactly one arbiter span per evaluate().
  expect_count(obs::Phase::kArbiter,
               find_counter(r.counters, "dpm.evaluations").value_or(0),
               "dpm evaluations");

  const display::RefreshRateSet ladder{scenario_.rates};
  sim::Time prev{};
  for (const obs::Span& sp : r.spans) {
    if (sp.begin.ticks < prev.ticks) {
      std::ostringstream os;
      os << "I6 spans: begin time went backwards at " << sp.begin.ticks
         << "us (previous " << prev.ticks << "us)";
      out.push_back(os.str());
      break;
    }
    prev = sp.begin;
  }
  for (const obs::Span& sp : r.spans) {
    if (sp.phase != obs::Phase::kPanelPresent) continue;
    if (!ladder.supports(static_cast<int>(sp.arg))) {
      std::ostringstream os;
      os << "I6 spans: panel presented at " << sp.arg
         << " Hz, not a ladder rate";
      out.push_back(os.str());
      break;
    }
  }
}

void TraceInvariantChecker::check_ladder_order(
    const RunArtifacts& r, std::vector<std::string>& out) const {
  if (!obs::SpanRecorder::compiled_in() || spans_maybe_dropped(r)) return;
  // Every rung change stamps one kDegrade span (arg = the new rung), and the
  // ladder starts at rung 0 -- so the ordered span stream IS the rung
  // history.  The LadderConfig defaults are the only values the device
  // assembly ever builds the ladder with.
  const core::LadderConfig ladder{};
  int prev = 0;
  sim::Time prev_t{};
  bool first = true;
  for (const obs::Span& sp : r.spans) {
    if (sp.phase != obs::Phase::kDegrade) continue;
    const int rung = static_cast<int>(sp.arg);
    if (rung < 0 || rung > 4) {
      std::ostringstream os;
      os << "I7 ladder: rung " << rung << " at " << sp.begin.ticks
         << "us is outside [0, 4]";
      out.push_back(os.str());
      return;
    }
    const int step = rung - prev;
    if (step != 1 && step != -1) {
      std::ostringstream os;
      os << "I7 ladder: rung jumped " << prev << " -> " << rung << " at "
         << sp.begin.ticks << "us (rungs must change one at a time)";
      out.push_back(os.str());
      return;
    }
    if (!first) {
      const sim::Duration gap{sp.begin.ticks - prev_t.ticks};
      if (gap.ticks < ladder.step_hold.ticks) {
        std::ostringstream os;
        os << "I7 ladder: rung changes " << gap.ticks << "us apart at "
           << sp.begin.ticks << "us, below the " << ladder.step_hold.ticks
           << "us step hold";
        out.push_back(os.str());
        return;
      }
      if (step == -1 && gap.ticks < ladder.recovery_cooldown.ticks) {
        std::ostringstream os;
        os << "I7 ladder: recovery step " << gap.ticks << "us after the "
           << "previous change at " << sp.begin.ticks << "us, below the "
           << ladder.recovery_cooldown.ticks << "us cooldown";
        out.push_back(os.str());
        return;
      }
    }
    prev = rung;
    prev_t = sp.begin;
    first = false;
  }
}

void TraceInvariantChecker::check_ladder_return(
    const RunArtifacts& r, std::vector<std::string>& out) const {
  if (scenario_.pressure_scale == 0.0 || scenario_.pressure_until_ms == 0) {
    return;
  }
  if (!obs::SpanRecorder::compiled_in() || spans_maybe_dropped(r)) return;

  // Bounded recovery window after the last episode can have cleared: the
  // longest episode still live at the horizon drains out, then the ladder
  // climbs down at most four rungs, one per cooldown, each observed at the
  // next evaluation tick.  Plus margin for the boundary tick.
  const core::LadderConfig ladder{};
  const fault::FaultPlan nominal = fault::FaultPlan::pressure_nominal();
  const std::int64_t residual_ms =
      std::max({nominal.thermal_duration.ticks, nominal.brownout_duration.ticks,
                nominal.jitter_duration.ticks}) /
      1000;
  const std::int64_t per_step_ms =
      ladder.recovery_cooldown.ticks / 1000 + scenario_.eval_ms;
  const std::int64_t window_ms = residual_ms + 4 * per_step_ms + 500;
  if (scenario_.pressure_until_ms + window_ms > scenario_.duration_ms) {
    return;  // the run ends inside the window: recovery need not complete
  }
  const sim::Time deadline =
      sim::Time{} + sim::milliseconds(scenario_.pressure_until_ms + window_ms);

  int final_rung = 0;
  sim::Time final_t{};
  for (const obs::Span& sp : r.spans) {
    if (sp.phase != obs::Phase::kDegrade) continue;
    final_rung = static_cast<int>(sp.arg);
    final_t = sp.begin;
    if (sp.begin.ticks > deadline.ticks) {
      std::ostringstream os;
      os << "I8 ladder: rung changed to " << final_rung << " at "
         << sp.begin.ticks << "us, after the recovery deadline "
         << deadline.ticks << "us";
      out.push_back(os.str());
      return;
    }
  }
  if (final_rung != 0) {
    std::ostringstream os;
    os << "I8 ladder: run ended at rung " << final_rung << " (last change at "
       << final_t.ticks << "us); expected a return to rung 0 by "
       << deadline.ticks << "us";
    out.push_back(os.str());
  }
}

}  // namespace ccdem::check
