#include "check/minimizer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "apps/scene.h"
#include "apps/scene_dsl.h"
#include "device/simulated_device.h"
#include "display/refresh_rate.h"
#include "input/monkey.h"
#include "sim/rng.h"

namespace ccdem::check {

namespace {

/// Drops script gestures that can no longer start within the duration.
void trim_script_to_duration(Scenario& s) {
  if (!s.script) return;
  const sim::Time end{sim::milliseconds(s.duration_ms).ticks};
  auto& g = *s.script;
  g.erase(std::remove_if(g.begin(), g.end(),
                         [&](const input::TouchGesture& t) {
                           return t.start.ticks >= end.ticks;
                         }),
          g.end());
}

/// Clears rung-membership fields that a thinner ladder no longer supports.
void reconcile_rungs(Scenario& s) {
  const display::RefreshRateSet ladder{s.rates};
  if (s.baseline_hz != 0 && !ladder.supports(s.baseline_hz)) s.baseline_hz = 0;
  if (s.min_hz != 0 && !ladder.supports(s.min_hz)) s.min_hz = 0;
  if (s.boost_hz != 0 && !ladder.supports(s.boost_hz)) s.boost_hz = 0;
}

class Shrinker {
 public:
  Shrinker(Scenario failing, const FailurePredicate& predicate,
           const MinimizeOptions& options)
      : predicate_(predicate), options_(options) {
    result_.scenario = std::move(failing);
  }

  MinimizeResult run() {
    ++result_.attempts;
    const auto initial = predicate_(result_.scenario);
    if (!initial) return result_;  // does not fail: nothing to minimize
    result_.failure = *initial;

    bool changed = true;
    while (changed && budget_left()) {
      changed = false;
      changed |= shrink_duration();
      changed |= shrink_fleet();
      changed |= shrink_faults();
      changed |= shrink_pressure();
      changed |= shrink_pipeline();
      changed |= shrink_mode();
      changed |= shrink_script();
      changed |= shrink_scene();
      changed |= shrink_scalars();
      changed |= shrink_ladder();
    }
    return result_;
  }

 private:
  [[nodiscard]] bool budget_left() const {
    return result_.attempts < options_.max_attempts;
  }

  /// Re-runs the predicate on `cand`; keeps it when it still fails.
  bool try_accept(Scenario cand) {
    if (!budget_left() || cand == result_.scenario) return false;
    ++result_.attempts;
    if (const auto f = predicate_(cand)) {
      result_.scenario = std::move(cand);
      result_.failure = *f;
      ++result_.accepted;
      return true;
    }
    return false;
  }

  bool shrink_duration() {
    bool any = false;
    while (result_.scenario.duration_ms > options_.min_duration_ms) {
      Scenario c = result_.scenario;
      c.duration_ms = std::max(options_.min_duration_ms, c.duration_ms / 2);
      trim_script_to_duration(c);
      if (!try_accept(std::move(c))) break;
      any = true;
    }
    return any;
  }

  bool shrink_fleet() {
    if (!result_.scenario.fleet) return false;
    Scenario c = result_.scenario;
    c.fleet = false;
    return try_accept(std::move(c));
  }

  bool shrink_faults() {
    if (result_.scenario.fault_scale == 0.0) return false;
    bool any = false;
    {
      Scenario c = result_.scenario;
      c.fault_scale = 0.0;
      c.fault_until_ms = 0;
      c.fault_classes = FaultClasses{};
      if (try_accept(std::move(c))) return true;
    }
    if (result_.scenario.fault_until_ms != 0) {
      Scenario c = result_.scenario;
      c.fault_until_ms = 0;
      any |= try_accept(std::move(c));
    }
    // One class at a time: the surviving set is what the failure needs.
    const auto flags = {&FaultClasses::switching, &FaultClasses::stuck,
                        &FaultClasses::capability, &FaultClasses::touch,
                        &FaultClasses::meter};
    for (const auto flag : flags) {
      if (!(result_.scenario.fault_classes.*flag)) continue;
      FaultClasses fc = result_.scenario.fault_classes;
      fc.*flag = false;
      if (!fc.switching && !fc.stuck && !fc.capability && !fc.touch &&
          !fc.meter) {
        continue;  // scenario validation demands at least one class
      }
      Scenario c = result_.scenario;
      c.fault_classes = fc;
      any |= try_accept(std::move(c));
    }
    return any;
  }

  /// Mirrors shrink_faults for the pressure half: drop the whole plane,
  /// then the horizon, then one episode class at a time -- the surviving
  /// class is the one the failure needs.
  bool shrink_pressure() {
    if (result_.scenario.pressure_scale == 0.0) return false;
    bool any = false;
    {
      Scenario c = result_.scenario;
      c.pressure_scale = 0.0;
      c.pressure_until_ms = 0;
      c.pressure_classes = PressureClasses{};
      if (try_accept(std::move(c))) return true;
    }
    if (result_.scenario.pressure_until_ms != 0) {
      Scenario c = result_.scenario;
      c.pressure_until_ms = 0;
      any |= try_accept(std::move(c));
    }
    const auto flags = {&PressureClasses::thermal, &PressureClasses::brownout,
                        &PressureClasses::jitter};
    for (const auto flag : flags) {
      if (!(result_.scenario.pressure_classes.*flag)) continue;
      PressureClasses pc = result_.scenario.pressure_classes;
      pc.*flag = false;
      if (!pc.thermal && !pc.brownout && !pc.jitter) continue;
      Scenario c = result_.scenario;
      c.pressure_classes = pc;
      any |= try_accept(std::move(c));
    }
    return any;
  }

  /// Drops pipeline stages one at a time (skipping candidates that fail
  /// spec validation, e.g. removing the only rate source).
  bool shrink_pipeline() {
    using device::ControlMode;
    if (result_.scenario.mode != ControlMode::kPipeline) return false;
    bool any = false;
    bool changed = true;
    while (changed && budget_left()) {
      changed = false;
      const auto spec =
          core::PipelineSpec::parse(result_.scenario.pipeline, nullptr);
      if (!spec) return any;
      for (std::size_t i = 0; i < spec->stages.size(); ++i) {
        core::PipelineSpec cand = *spec;
        cand.stages.erase(cand.stages.begin() + static_cast<std::ptrdiff_t>(i));
        if (cand.empty() || cand.validate()) continue;
        Scenario c = result_.scenario;
        c.pipeline = cand.to_string();
        if (try_accept(std::move(c))) {
          any = changed = true;
          break;  // restart over the shrunk spec
        }
      }
    }
    return any;
  }

  bool shrink_mode() {
    using device::ControlMode;
    bool any = false;
    while (budget_left()) {
      ControlMode next;
      Scenario c = result_.scenario;
      switch (result_.scenario.mode) {
        case ControlMode::kNaive:
        case ControlMode::kSectionWithBoost:
          next = ControlMode::kSection;
          break;
        case ControlMode::kSectionHysteresis:
          next = ControlMode::kSectionWithBoost;
          break;
        case ControlMode::kPipeline:
          // Explicit compositions floor at the simplest legacy arm.
          next = ControlMode::kSection;
          c.pipeline.clear();
          break;
        default:
          return any;  // kSection / kBaseline60 / kE3FrameRate: floor reached
      }
      c.mode = next;
      if (!try_accept(std::move(c))) return any;
      any = true;
    }
    return any;
  }

  bool shrink_script() {
    bool any = false;
    if (!result_.scenario.script) {
      // Materialize the seed's Monkey script verbatim: replaying an embedded
      // copy is equivalent, and only an explicit list can be delta-debugged.
      const auto app = find_app(result_.scenario.app);
      if (!app) return false;
      const sim::Rng root{result_.scenario.seed};
      sim::Rng monkey = root.fork(device::SimulatedDevice::kMonkeyRngStream);
      Scenario c = result_.scenario;
      c.script = input::generate_monkey_script(monkey, app->monkey,
                                               c.duration(),
                                               apps::kGalaxyS3Screen);
      if (!try_accept(std::move(c))) return false;
      any = true;
    }
    // ddmin-lite over the gesture list: remove progressively smaller chunks.
    for (std::size_t chunk = std::max<std::size_t>(
             result_.scenario.script->size() / 2, 1);
         chunk >= 1 && budget_left(); chunk /= 2) {
      bool removed = true;
      while (removed && budget_left()) {
        removed = false;
        const auto& gestures = *result_.scenario.script;
        for (std::size_t at = 0; at < gestures.size() && budget_left();
             at += chunk) {
          Scenario c = result_.scenario;
          auto& g = *c.script;
          g.erase(g.begin() + static_cast<std::ptrdiff_t>(at),
                  g.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(at + chunk, g.size())));
          if (try_accept(std::move(c))) {
            removed = true;
            any = true;
            break;  // indices shifted: rescan this chunk size
          }
        }
      }
      if (chunk == 1) break;
    }
    return any;
  }

  /// Re-serializes `spec` and keeps it if the scenario still fails.
  bool accept_scene(const apps::SceneSpec& spec) {
    Scenario c = result_.scenario;
    c.scene = apps::scene_spec_to_string(spec);
    return try_accept(std::move(c));
  }

  /// State-graph shrinking for a UI scene, one accepted mutation per call:
  /// drop whole states (bypassing edges through the dropped state's timed
  /// successor), halve dwells toward 100 ms, then straighten the graph --
  /// touch edges off, timed edges into self-loops, idle timeout off.
  bool shrink_ui_scene(const apps::SceneSpec& spec) {
    const int n = static_cast<int>(spec.ui.states.size());
    for (int i = 0; n > 1 && i < n; ++i) {
      apps::SceneSpec cand = spec;
      auto& states = cand.ui.states;
      int bypass = states[static_cast<std::size_t>(i)].next;
      if (bypass == i) bypass = 0;
      states.erase(states.begin() + i);
      for (auto& st : states) {
        if (st.next == i) st.next = bypass;
        if (st.next > i) --st.next;
        if (st.touch_next == i) st.touch_next = -1;
        if (st.touch_next > i) --st.touch_next;
      }
      if (accept_scene(cand)) return true;
    }
    for (int i = 0; i < n; ++i) {
      const auto& st = spec.ui.states[static_cast<std::size_t>(i)];
      if (st.dwell_ms > 100) {
        apps::SceneSpec cand = spec;
        cand.ui.states[static_cast<std::size_t>(i)].dwell_ms =
            std::max<std::int64_t>(100, st.dwell_ms / 2);
        if (accept_scene(cand)) return true;
      }
      if (st.touch_next != -1) {
        apps::SceneSpec cand = spec;
        cand.ui.states[static_cast<std::size_t>(i)].touch_next = -1;
        if (accept_scene(cand)) return true;
      }
      if (st.next != i) {
        apps::SceneSpec cand = spec;
        cand.ui.states[static_cast<std::size_t>(i)].next = i;
        if (accept_scene(cand)) return true;
      }
    }
    if (spec.ui.idle_timeout_ms != 0) {
      apps::SceneSpec cand = spec;
      cand.ui.idle_timeout_ms = 0;
      if (accept_scene(cand)) return true;
    }
    return false;
  }

  /// Burst-video shrinking: drop motion segments, halve the burst, then
  /// halve the gap; one accepted mutation per call.
  bool shrink_burst_scene(const apps::SceneSpec& spec) {
    for (std::size_t i = 0; spec.burst.motion.size() > 1 &&
                            i < spec.burst.motion.size();
         ++i) {
      apps::SceneSpec cand = spec;
      cand.burst.motion.erase(cand.burst.motion.begin() +
                              static_cast<std::ptrdiff_t>(i));
      if (accept_scene(cand)) return true;
    }
    if (spec.burst.burst_frames > 1) {
      apps::SceneSpec cand = spec;
      cand.burst.burst_frames = std::max(1, spec.burst.burst_frames / 2);
      if (accept_scene(cand)) return true;
    }
    if (spec.burst.gap_ms > 100) {
      apps::SceneSpec cand = spec;
      cand.burst.gap_ms = std::max<std::int64_t>(100, spec.burst.gap_ms / 2);
      if (accept_scene(cand)) return true;
    }
    return false;
  }

  /// Shrinks the scene override: drop it entirely first, then mutate the
  /// parsed spec one accepted step at a time until a fixpoint.
  bool shrink_scene() {
    if (result_.scenario.scene.empty()) return false;
    bool any = false;
    {
      Scenario c = result_.scenario;
      c.scene.clear();
      if (try_accept(std::move(c))) return true;
    }
    bool changed = true;
    while (changed && budget_left()) {
      changed = false;
      const auto spec =
          apps::scene_spec_from_string(result_.scenario.scene, nullptr);
      if (!spec) return any;  // parse_scenario validated it; defensive only
      if (spec->type == apps::SceneSpec::Type::kUi) {
        changed = shrink_ui_scene(*spec);
      } else if (spec->type == apps::SceneSpec::Type::kBurstVideo) {
        changed = shrink_burst_scene(*spec);
      }
      any |= changed;
    }
    return any;
  }

  bool shrink_scalars() {
    bool any = false;
    const Scenario defaults;
    const auto reset = [&](auto member, auto value) {
      if (result_.scenario.*member == value) return;
      Scenario c = result_.scenario;
      c.*member = value;
      any |= try_accept(std::move(c));
    };
    reset(&Scenario::alpha, defaults.alpha);
    reset(&Scenario::eval_ms, defaults.eval_ms);
    reset(&Scenario::boost_hold_ms, defaults.boost_hold_ms);
    reset(&Scenario::meter_window_ms, defaults.meter_window_ms);
    reset(&Scenario::baseline_hz, defaults.baseline_hz);
    reset(&Scenario::min_hz, defaults.min_hz);
    reset(&Scenario::boost_hz, defaults.boost_hz);
    reset(&Scenario::fast_rate_up, defaults.fast_rate_up);
    reset(&Scenario::grid, defaults.grid);
    return any;
  }

  bool shrink_ladder() {
    bool any = false;
    bool removed = true;
    while (removed && result_.scenario.rates.size() > 1 && budget_left()) {
      removed = false;
      for (std::size_t i = 0;
           i < result_.scenario.rates.size() && budget_left(); ++i) {
        if (result_.scenario.rates.size() <= 1) break;
        Scenario c = result_.scenario;
        c.rates.erase(c.rates.begin() + static_cast<std::ptrdiff_t>(i));
        reconcile_rungs(c);
        if (try_accept(std::move(c))) {
          removed = true;
          any = true;
          break;  // indices shifted: rescan
        }
      }
    }
    return any;
  }

  const FailurePredicate& predicate_;
  const MinimizeOptions& options_;
  MinimizeResult result_;
};

}  // namespace

MinimizeResult minimize_scenario(const Scenario& failing,
                                 const FailurePredicate& predicate,
                                 const MinimizeOptions& options) {
  return Shrinker(failing, predicate, options).run();
}

}  // namespace ccdem::check
