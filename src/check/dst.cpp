#include "check/dst.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "fault/fault_plan.h"
#include "gfx/compare.h"
#include "harness/fleet.h"
#include "metrics/quality.h"

namespace ccdem::check {

namespace {

/// I4 runs only where the quality comparison is meaningful: the proposed
/// system on a clean run long enough for the 1 s-window rates to settle.
bool quality_arm_applies(const Scenario& s) {
  using device::ControlMode;
  bool proposed = s.mode == ControlMode::kSection ||
                  s.mode == ControlMode::kSectionWithBoost ||
                  s.mode == ControlMode::kSectionHysteresis;
  if (s.mode == ControlMode::kPipeline) {
    // An explicit composition counts as "the proposed system" when its rate
    // source is content-derived (section or predictive; naive-only arms are
    // the paper's failed mapping and trade quality by design).
    const auto spec = core::PipelineSpec::parse(s.pipeline, nullptr);
    proposed = spec && (spec->contains(core::StageId::kSection) ||
                        spec->contains(core::StageId::kPredictive));
  }
  return proposed && s.fault_scale == 0.0 && s.pressure_scale == 0.0 &&
         s.duration_ms >= 2500;
}

/// The tail of `t` restricted to points at or after `from` (for comparing
/// post-recovery steady state between two arms).
sim::Trace trace_tail(const sim::Trace& t, sim::Time from) {
  sim::Trace out{"tail"};
  for (const sim::TracePoint& p : t.points()) {
    if (p.t.ticks >= from.ticks) out.record(p.t, p.value);
  }
  return out;
}

/// Time-weighted mean of a step signal over [lo, hi].
double mean_step_over(const sim::Trace& step, sim::Time lo, sim::Time hi) {
  if (hi.ticks <= lo.ticks) return 0.0;
  double acc = 0.0;
  double value = step.value_at(lo, 0.0);
  sim::Time at = lo;
  for (const sim::TracePoint& p : step.points()) {
    if (p.t.ticks <= lo.ticks) continue;
    if (p.t.ticks > hi.ticks) break;
    acc += value * static_cast<double>(p.t.ticks - at.ticks);
    value = p.value;
    at = p.t;
  }
  acc += value * static_cast<double>(hi.ticks - at.ticks);
  return acc / static_cast<double>(hi.ticks - lo.ticks);
}

/// Where invariant I8's bounded recovery window ends for scenario `s`, or
/// nullopt when the scenario never stops its pressure episodes.  Mirrors
/// TraceInvariantChecker::check_ladder_return.
std::optional<sim::Time> recovery_deadline(const Scenario& s) {
  if (s.pressure_scale == 0.0 || s.pressure_until_ms == 0) return std::nullopt;
  const core::LadderConfig ladder{};
  const fault::FaultPlan nominal = fault::FaultPlan::pressure_nominal();
  const std::int64_t residual_ms =
      std::max({nominal.thermal_duration.ticks, nominal.brownout_duration.ticks,
                nominal.jitter_duration.ticks}) /
      1000;
  const std::int64_t per_step_ms =
      ladder.recovery_cooldown.ticks / 1000 + s.eval_ms;
  const std::int64_t window_ms = residual_ms + 4 * per_step_ms + 500;
  return sim::Time{} + sim::milliseconds(s.pressure_until_ms + window_ms);
}

}  // namespace

std::string CheckReport::to_string() const {
  std::ostringstream os;
  for (const std::string& f : failures) os << f << '\n';
  return os.str();
}

CheckReport check_scenario(const Scenario& s, const CheckOptions& options) {
  CheckReport report;
  if (!find_app(s.app)) {
    report.failures.push_back("unknown app profile '" + s.app + "'");
    return report;
  }
  const harness::ExperimentConfig cfg = s.experiment_config();

  const RunArtifacts culled = run_scenario_once(cfg, {true, true});

  if (options.oracle_determinism) {
    const RunArtifacts again = run_scenario_once(cfg, {true, true});
    if (culled.trace_csv != again.trace_csv) {
      report.failures.push_back(
          "determinism: serialized obs trace differs between two runs of the "
          "same config");
    }
    if (auto d = diff_results(culled.result, again.result, "determinism")) {
      report.failures.push_back(*d);
    }
  }

  // The unculled reference run also feeds the I5 invariant below.
  std::optional<RunArtifacts> unculled;
  if (options.oracle_unculled) {
    unculled = run_scenario_once(cfg, {false, true});
    // Meter bit-flip faults legitimately split the two paths: a flip at a
    // sample outside the damage region is invisible to the damage-scoped
    // scan (those points are neither read nor refreshed) but triggers the
    // full reference scan.  The equivalence claim only covers fault-free
    // sampling, so the diff is skipped -- I5's accounting checks still run.
    const bool meter_faults =
        s.fault_scale > 0.0 && s.fault_classes.meter;
    if (!meter_faults) {
      if (auto d =
              diff_results(culled.result, unculled->result, "unculled")) {
        report.failures.push_back(*d);
      }
      // The culled meter reads fewer pixels -- that is the whole point --
      // so only the meter work counters may differ.
      if (auto d = diff_counters(culled.counters, unculled->counters,
                                 "unculled", {"meter.pixels_"})) {
        report.failures.push_back(*d);
      }
    }
  }

  if (options.oracle_kernel &&
      &gfx::kernels::active_kernels() != &gfx::kernels::scalar_kernels()) {
    // The wide kernels claim bit-exactness, so this diff is total: every
    // result field (frame hashes included), every counter, and the
    // serialized trace must match the scalar reference byte for byte.
    RunOptions scalar_opt;
    scalar_opt.force_scalar_kernels = true;
    const RunArtifacts scalar_run = run_scenario_once(cfg, scalar_opt);
    if (culled.trace_csv != scalar_run.trace_csv) {
      report.failures.push_back(
          "kernel: serialized obs trace differs between the active SIMD "
          "kernel table and the scalar reference");
    }
    if (auto d = diff_results(culled.result, scalar_run.result, "kernel")) {
      report.failures.push_back(*d);
    }
    if (auto d = diff_counters(culled.counters, scalar_run.counters,
                               "kernel")) {
      report.failures.push_back(*d);
    }
  }

  if (options.oracle_tile_memo) {
    RunOptions memo_off;
    memo_off.tile_memo = false;
    const RunArtifacts unmemoized = run_scenario_once(cfg, memo_off);
    // Meter bit-flip faults split the legs the same way they split
    // culled-vs-unculled: skipped tile writes shrink the damage region, so
    // a corrupted retained sample outside the shrunk damage is invisible to
    // the memoized run but not to the reference.  Clean runs must agree.
    const bool meter_faults = s.fault_scale > 0.0 && s.fault_classes.meter;
    if (!meter_faults) {
      if (auto d =
              diff_results(culled.result, unmemoized.result, "tile-memo")) {
        report.failures.push_back(*d);
      }
      // Skipping writes is allowed to change exactly two things: how much
      // the meter had to compare (damage shrinks to the proven-changed
      // tiles) and the memo accounting itself.
      if (auto d = diff_counters(culled.counters, unmemoized.counters,
                                 "tile-memo",
                                 {"meter.pixels_", "flinger.memo."})) {
        report.failures.push_back(*d);
      }
    }
  }

  if (options.oracle_spans_off) {
    const RunArtifacts quiet = run_scenario_once(cfg, {true, false});
    if (auto d = diff_results(culled.result, quiet.result, "spans-off")) {
      report.failures.push_back(*d);
    }
    if (auto d = diff_counters(culled.counters, quiet.counters, "spans-off")) {
      report.failures.push_back(*d);
    }
  }

  if (options.oracle_fleet && s.fleet) {
    harness::FleetRunner fleet;
    // The serial leg hashed its frame stream (RunOptions default), so the
    // fleet leg must too for the result diff to compare them.
    harness::ExperimentConfig fleet_cfg = cfg;
    fleet_cfg.hash_frames = true;
    const std::vector<harness::ExperimentResult> results =
        fleet.run({fleet_cfg});
    if (auto d = diff_results(culled.result, results.at(0), "fleet")) {
      report.failures.push_back(*d);
    }
    // Fleet workers recycle device storage through a buffer pool the serial
    // run does not use; everything else must merge to identical totals.
    if (auto d = diff_counters(culled.counters,
                               fleet.stats().counters.snapshot(), "fleet",
                               {"pool."})) {
      report.failures.push_back(*d);
    }
  }

  if (options.oracle_reference) {
    if (auto d = check_section_reference(s)) report.failures.push_back(*d);
  }

  if (options.invariants) {
    const TraceInvariantChecker checker(s, options.invariant_options);
    for (std::string& v :
         checker.check(culled, unculled ? &*unculled : nullptr)) {
      report.failures.push_back(std::move(v));
    }
  }

  if (options.quality_arm && quality_arm_applies(s)) {
    harness::ExperimentConfig base_cfg = cfg;
    base_cfg.mode = device::ControlMode::kBaseline60;
    const RunArtifacts baseline =
        run_scenario_once(base_cfg, {true, /*spans=*/false});
    const metrics::QualityReport q = metrics::compare_quality(
        baseline.result.content_rate, culled.result.content_rate);
    // A near-static run has too little content for the ratio to mean much.
    if (q.actual_content_fps >= 1.0 &&
        q.display_quality_pct < options.quality_gate_pct) {
      std::ostringstream os;
      os << "I4 quality gate: display quality " << q.display_quality_pct
         << "% < " << options.quality_gate_pct << "% (actual "
         << q.actual_content_fps << " fps, delivered "
         << q.delivered_content_fps << " fps)";
      report.failures.push_back(os.str());
    }
  }

  // I8 steady-state arm: after the bounded recovery window, the pressured
  // run must be indistinguishable (quality, mean refresh) from the same
  // scenario without pressure.  Fault-free only: link/sensor faults diverge
  // the arms for their own reasons.
  const std::optional<sim::Time> deadline = recovery_deadline(s);
  if (options.pressure_recovery_arm && deadline && s.fault_scale == 0.0 &&
      s.mode != device::ControlMode::kBaseline60 &&
      deadline->ticks + sim::milliseconds(1500).ticks <=
          sim::milliseconds(s.duration_ms).ticks) {
    Scenario clean = s;
    clean.pressure_scale = 0.0;
    clean.pressure_until_ms = 0;
    clean.pressure_classes = PressureClasses{};
    const RunArtifacts unpressured =
        run_scenario_once(clean.experiment_config(), {true, /*spans=*/false});
    const sim::Time tail_start = *deadline;
    const metrics::QualityReport q = metrics::compare_quality(
        trace_tail(unpressured.result.content_rate, tail_start),
        trace_tail(culled.result.content_rate, tail_start));
    if (q.actual_content_fps >= 1.0 &&
        q.display_quality_pct < options.recovery_quality_pct) {
      std::ostringstream os;
      os << "I8 steady state: post-recovery tail quality "
         << q.display_quality_pct << "% of the unpressured arm (gate "
         << options.recovery_quality_pct << "%)";
      report.failures.push_back(os.str());
    }
    const sim::Time end = sim::Time{} + sim::milliseconds(s.duration_ms);
    const double mean_p =
        mean_step_over(culled.result.refresh_rate, tail_start, end);
    const double mean_u =
        mean_step_over(unpressured.result.refresh_rate, tail_start, end);
    if (std::abs(mean_p - mean_u) > options.recovery_rate_tolerance_hz) {
      std::ostringstream os;
      os << "I8 steady state: post-recovery mean refresh " << mean_p
         << " Hz vs " << mean_u << " Hz unpressured (tolerance "
         << options.recovery_rate_tolerance_hz << " Hz)";
      report.failures.push_back(os.str());
    }
  }

  return report;
}

FailurePredicate make_failure_predicate(CheckOptions options) {
  return [options](const Scenario& s) -> std::optional<std::string> {
    const CheckReport r = check_scenario(s, options);
    if (r.ok()) return std::nullopt;
    return r.failures.front();
  };
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  ScenarioGen gen(options.seed, options.gen);
  const FailurePredicate predicate = make_failure_predicate(options.check);
  for (int i = 0; i < options.scenarios; ++i) {
    const Scenario s = gen.next();
    const CheckReport check = check_scenario(s, options.check);
    ++report.scenarios_run;
    if (options.log != nullptr) {
      *options.log << "dst: scenario " << i << " app=" << s.app
                   << " mode=" << device::control_mode_name(s.mode)
                   << " seed=" << s.seed
                   << (check.ok() ? " ok" : " FAILED") << '\n';
      if (!check.ok()) *options.log << check.to_string();
    }
    if (check.ok()) continue;

    FuzzFailure failure;
    failure.index = static_cast<std::uint64_t>(i);
    failure.scenario = s;
    failure.failures = check.failures;
    failure.minimized = s;
    failure.minimized_failure = check.failures.front();
    if (options.minimize) {
      const MinimizeResult m =
          minimize_scenario(s, predicate, options.minimize_options);
      failure.minimized = m.scenario;
      if (!m.failure.empty()) failure.minimized_failure = m.failure;
      failure.shrink_attempts = m.attempts;
      if (options.log != nullptr) {
        *options.log << "dst: minimized in " << m.attempts << " attempts ("
                     << m.accepted << " accepted): "
                     << failure.minimized_failure << '\n';
      }
    }
    report.failures.push_back(std::move(failure));
    if (static_cast<int>(report.failures.size()) >= options.max_failures) {
      break;
    }
  }
  return report;
}

}  // namespace ccdem::check
