#include "check/scenario_gen.h"

#include <algorithm>

#include "apps/app_profiles.h"
#include "apps/scene.h"
#include "apps/scene_dsl.h"

namespace ccdem::check {

namespace {

/// Weighted pick over the control modes.  The proposed system's modes get
/// most of the probability mass; the stock arms still appear so the
/// baseline/e3 code paths stay under differential test.
device::ControlMode sample_mode(sim::Rng& rng) {
  using device::ControlMode;
  const double x = rng.next_double();
  if (x < 0.07) return ControlMode::kBaseline60;
  if (x < 0.25) return ControlMode::kSection;
  if (x < 0.50) return ControlMode::kSectionWithBoost;
  if (x < 0.62) return ControlMode::kSectionHysteresis;
  if (x < 0.70) return ControlMode::kNaive;
  if (x < 0.82) return ControlMode::kE3FrameRate;
  return ControlMode::kPipeline;
}

/// A random valid stage composition in canonical order: rate source(s)
/// first, then the hysteresis filter, overlays (boost), and the DVFS cap.
/// Every composition this returns passes PipelineSpec::validate().
std::string sample_pipeline(sim::Rng& rng) {
  using core::StageId;
  core::PipelineSpec spec;
  const double src = rng.next_double();
  if (src < 0.50) {
    spec.stages.push_back(StageId::kSection);
  } else if (src < 0.80) {
    spec.stages.push_back(StageId::kPredictive);
  } else if (src < 0.90) {
    spec.stages.push_back(StageId::kNaive);
  } else {
    spec.stages.push_back(StageId::kSection);
    spec.stages.push_back(StageId::kPredictive);
  }
  if (rng.chance(0.40)) spec.stages.push_back(StageId::kHysteresis);
  if (rng.chance(0.60)) spec.stages.push_back(StageId::kBoost);
  if (rng.chance(0.30)) spec.stages.push_back(StageId::kDvfs);
  return spec.to_string();
}

const char* sample_grid(sim::Rng& rng) {
  const double x = rng.next_double();
  if (x < 0.20) return "2k";
  if (x < 0.40) return "4k";
  if (x < 0.75) return "9k";
  if (x < 0.92) return "36k";
  return "full";
}

std::vector<int> sample_ladder(sim::Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0:
    case 1:
    case 2: return {20, 24, 30, 40, 60};              // the paper's panel
    case 3: return {1, 10, 24, 30, 40, 60, 90, 120};  // LTPO-class
    case 4: return {30, 60};
    case 5: return {20, 30, 60, 90};
    default: return {60};                             // single-rate panel
  }
}

template <typename T>
T pick(sim::Rng& rng, std::initializer_list<T> values) {
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(values.size()) - 1));
  return *(values.begin() + i);
}

/// A random UI state graph over the quality-arm-safe palette: animation
/// rates capped at 24 fps (so delivered/actual stays well above the I4
/// gate even on a throttled ladder) and dwells short enough that a 1.5 s
/// run already walks several transitions.
apps::UiSceneSpec sample_ui_scene(sim::Rng& rng) {
  apps::UiSceneSpec ui;
  ui.states.clear();
  const int n = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < n; ++i) {
    apps::UiState st;
    st.kind = static_cast<apps::UiState::Kind>(rng.uniform_int(0, 5));
    st.dwell_ms = pick(rng, {0L, 200L, 400L, 700L, 1200L});
    st.anim_fps = pick(rng, {0.0, 2.0, 6.0, 12.0, 24.0});
    st.next = static_cast<int>(rng.uniform_int(0, n - 1));
    st.touch_next =
        rng.chance(0.5) ? static_cast<int>(rng.uniform_int(0, n - 1)) : -1;
    ui.states.push_back(st);
  }
  ui.idle_timeout_ms = pick(rng, {0L, 1500L, 3000L});
  ui.marquee_px = pick(rng, {1, 2, 6, 12});
  return ui;
}

/// A random burst-video timeline.  Gaps stay under the shortest sampled
/// meter window (500 ms) so the content-rate meter never fully decays
/// between bursts on a clean run.
apps::BurstVideoSpec sample_burst_scene(sim::Rng& rng) {
  apps::BurstVideoSpec b;
  b.gap_ms = pick(rng, {200L, 350L, 450L});
  b.burst_frames = static_cast<int>(rng.uniform_int(4, 20));
  b.burst_fps = pick(rng, {12.0, 24.0, 30.0});
  b.motion.clear();
  const int n = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < n; ++i) {
    b.motion.push_back(static_cast<int>(rng.uniform_int(0, 3)));
  }
  return b;
}

}  // namespace

ScenarioGen::ScenarioGen(std::uint64_t seed, Options options)
    : rng_(seed), options_(options) {
  for (const auto& spec : apps::all_apps()) app_pool_.push_back(spec.name);
  app_pool_.push_back(apps::nexus_revampled_wallpaper().name);
  // Scene demos live in their own pool: the app draw below indexes
  // app_pool_, so growing it would shift every pre-scene sequence.
  for (const auto& spec : apps::scene_demo_apps()) {
    scene_pool_.push_back(spec.name);
  }
}

Scenario ScenarioGen::next() {
  ++generated_;
  Scenario s;
  s.app = app_pool_[static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(app_pool_.size()) - 1))];
  s.mode = sample_mode(rng_);
  if (s.mode == device::ControlMode::kPipeline) {
    s.pipeline = sample_pipeline(rng_);
  }
  s.duration_ms =
      rng_.uniform_int(options_.min_duration_ms, options_.max_duration_ms);
  s.seed = rng_.next_u64();
  s.grid = sample_grid(rng_);
  s.eval_ms = pick(rng_, {50L, 100L, 100L, 200L, 250L});
  s.boost_hold_ms = pick(rng_, {200L, 500L, 500L, 1000L});
  s.meter_window_ms = pick(rng_, {500L, 1000L, 1000L, 2000L});
  s.alpha = pick(rng_, {0.0, 0.3, 0.5, 0.5, 0.7, 1.0});
  s.rates = sample_ladder(rng_);
  const display::RefreshRateSet ladder{s.rates};
  const auto rung = [&]() {
    return ladder.at(static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(ladder.count()) - 1)));
  };
  s.baseline_hz = rng_.chance(0.25) ? rung() : 0;
  s.min_hz = rng_.chance(0.20) ? rung() : 0;
  s.boost_hz = rng_.chance(0.20) ? rung() : 0;
  // Deep ladders without fast exit spend whole seconds waiting out a 1 Hz
  // period on every boost; sample fast_rate_up more often there.
  s.fast_rate_up = rng_.chance(ladder.min_hz() < 20 ? 0.7 : 0.3);
  if (rng_.chance(options_.fault_p)) {
    s.fault_scale = rng_.uniform(0.25, 2.5);
    s.fault_until_ms = rng_.chance(0.3) ? s.duration_ms / 2 : 0;
    FaultClasses fc;
    fc.switching = rng_.chance(0.8);
    fc.stuck = rng_.chance(0.8);
    fc.capability = rng_.chance(0.8);
    fc.touch = rng_.chance(0.8);
    fc.meter = rng_.chance(0.8);
    if (!fc.switching && !fc.stuck && !fc.capability && !fc.touch &&
        !fc.meter) {
      fc.switching = true;  // a faulted scenario must be able to fault
    }
    s.fault_classes = fc;
  }
  s.fleet = rng_.chance(options_.fleet_p);
  // Pressure draws come last so enabling the pressure plane left every
  // pre-existing sequence (and its replayable failures) untouched.
  if (rng_.chance(options_.pressure_p)) {
    s.pressure_scale = rng_.uniform(0.25, 3.0);
    // Usually end the episodes mid-run so invariant I8's bounded-recovery
    // check is live on most pressured scenarios.
    s.pressure_until_ms = rng_.chance(0.6) ? s.duration_ms / 2 : 0;
    PressureClasses pc;
    pc.thermal = rng_.chance(0.8);
    pc.brownout = rng_.chance(0.8);
    pc.jitter = rng_.chance(0.8);
    if (!pc.thermal && !pc.brownout && !pc.jitter) pc.thermal = true;
    s.pressure_classes = pc;
  }
  // Scene draws come last, same rule as pressure: raising scene_p (or
  // enriching the samplers above) never perturbs the pre-scene prefix of
  // any sequence, so old repro seeds keep replaying byte-identically.
  if (rng_.chance(options_.scene_p)) {
    s.app = scene_pool_[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(scene_pool_.size()) - 1))];
    if (rng_.chance(0.6)) {
      const apps::SceneSpec spec =
          rng_.chance(0.5)
              ? apps::SceneSpec::ui_machine(sample_ui_scene(rng_))
              : apps::SceneSpec::burst_video(sample_burst_scene(rng_));
      s.scene = apps::scene_spec_to_string(spec);
    }
    // Sparse scene content on a deep ladder can park a clean run below the
    // I4 quality gate (the controller idles at 1 Hz through a burst gap and
    // misses most of the next burst).  Apply the LTPO safety-floor
    // precedent: pin min_hz to the first rung >= 10 when the ladder dips
    // below it.
    if (ladder.min_hz() < 10 && s.min_hz < 10) {
      for (std::size_t i = 0; i < ladder.count(); ++i) {
        if (ladder.at(i) >= 10) {
          s.min_hz = ladder.at(i);
          break;
        }
      }
    }
  }
  return s;
}

}  // namespace ccdem::check
