// Differential oracles: the same scenario run several ways must agree.
//
// Each oracle replays one experiment config through an independent
// implementation of some subsystem and diffs everything observable:
//  * determinism  -- the same config twice; the serialized obs trace must be
//                    byte-identical (this is also what makes .repro replay
//                    exact),
//  * unculled     -- the damage-culled meter vs the full-grid reference
//                    (set_damage_culling(false)); results and counters must
//                    match except the meter.pixels_* work counters,
//  * spans-off    -- recording spans must not change a single counter or
//                    result (observability is passive),
//  * fleet        -- the work-stealing FleetRunner vs the serial run
//                    (identical modulo the pool.* reuse counters),
//  * kernel       -- the CPU-selected SIMD kernel table vs the forced scalar
//                    reference; *everything* must match, trace bytes
//                    included (the variants claim byte-identity),
//  * tile memo    -- compose memoization on vs off; results, frame hashes
//                    and counters must match except the meter work and
//                    flinger.memo.* accounting the skips exist to change,
//  * section ref  -- SectionTable/policy decisions vs a brute-force
//                    reimplementation of Equation (1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/scenario.h"
#include "harness/experiment.h"
#include "obs/counters.h"
#include "obs/span_recorder.h"

namespace ccdem::check {

/// Everything observable from one experiment run.
struct RunArtifacts {
  harness::ExperimentResult result;
  obs::Counters::Snapshot counters;
  std::vector<obs::Span> spans;
  /// Serialized span stream + counter snapshot (the golden-trace CSV
  /// format); byte-compared by the determinism oracle.
  std::string trace_csv;
};

struct RunOptions {
  bool damage_culling = true;
  bool spans = true;
  /// Tile-hash compose memoization (the memo oracle's off leg sets false).
  bool tile_memo = true;
  /// Force the scalar kernel table for this run regardless of CPU or the
  /// CCDEM_KERNEL override -- the kernel oracle's reference leg.  Swaps the
  /// process-global table, so only valid for serial (non-fleet) runs.
  bool force_scalar_kernels = false;
  /// Oracle runs fingerprint every composed frame by default so the diffs
  /// below prove frame-stream identity, not just end-state agreement.
  bool hash_frames = true;
};

/// Runs the config against a fresh device + private ObsSink and captures
/// the artifacts.  The config's own obs pointer is ignored.
[[nodiscard]] RunArtifacts run_scenario_once(harness::ExperimentConfig cfg,
                                             const RunOptions& opt = {});

/// Exact comparison of two results (traces pointwise, scalars bitwise).
/// Returns a description of the first difference, or std::nullopt.
[[nodiscard]] std::optional<std::string> diff_results(
    const harness::ExperimentResult& a, const harness::ExperimentResult& b,
    const std::string& what);

/// Compares two counter snapshots; names matching any prefix in
/// `exclude_prefixes` are ignored on both sides.
[[nodiscard]] std::optional<std::string> diff_counters(
    const obs::Counters::Snapshot& a, const obs::Counters::Snapshot& b,
    const std::string& what,
    const std::vector<std::string>& exclude_prefixes = {});

/// Brute-force Equation (1) reference check over the scenario's ladder and
/// alpha: SectionTable::rate_for / section_index_for and the ceil-rate
/// policy must match an independent O(sections^2) evaluation on a dense
/// content-rate sweep including every threshold boundary.
[[nodiscard]] std::optional<std::string> check_section_reference(
    const Scenario& s);

}  // namespace ccdem::check
