// ScenarioGen: seeded whole-experiment sampler for the DST fuzzer.
//
// Samples complete Scenarios -- app profile, control mode, grid density,
// section-table shape, rate ladder, fault plan, fleet-vs-serial -- from one
// Xoshiro stream, so a fuzz campaign is a pure function of its seed: the
// nth scenario of seed S is the same on every machine and every run, which
// is what lets CI failures be reproduced locally by seed alone.
#pragma once

#include <cstdint>
#include <vector>

#include "check/scenario.h"
#include "sim/rng.h"

namespace ccdem::check {

class ScenarioGen {
 public:
  struct Options {
    std::int64_t min_duration_ms = 1500;
    std::int64_t max_duration_ms = 5000;
    /// Probability a scenario additionally runs the fleet-identity oracle.
    double fleet_p = 0.25;
    /// Probability a scenario carries a fault plan.
    double fault_p = 0.45;
    /// Probability a scenario carries pressure episodes (independent of the
    /// fault plan, so pressure-only, fault-only and combined runs all
    /// appear).
    double pressure_p = 0.35;
    /// Probability a scenario targets the DSL scene space: the app is
    /// re-pointed at a scene-demo profile and usually carries a randomized
    /// ccdem-scene-v1 override (UI state graphs, burst video).  Drawn last,
    /// so raising it never perturbs pre-scene sequences.
    double scene_p = 0.25;
  };

  explicit ScenarioGen(std::uint64_t seed) : ScenarioGen(seed, Options{}) {}
  ScenarioGen(std::uint64_t seed, Options options);

  /// The next sampled scenario (deterministic in construction seed + call
  /// index).
  [[nodiscard]] Scenario next();

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 private:
  sim::Rng rng_;
  Options options_;
  std::vector<std::string> app_pool_;
  std::vector<std::string> scene_pool_;
  std::uint64_t generated_ = 0;
};

}  // namespace ccdem::check
