#include "fault/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace ccdem::fault {
namespace {

// Sub-stream ids under the injector's root stream.  Fixed forever: changing
// one fault class's draw pattern must not reshuffle the others.
constexpr std::uint64_t kSwitchStream = 1;
constexpr std::uint64_t kEpisodeStream = 2;
constexpr std::uint64_t kTouchStream = 3;
constexpr std::uint64_t kMeterStream = 4;
constexpr std::uint64_t kThermalStream = 5;
constexpr std::uint64_t kBrownoutStream = 6;
constexpr std::uint64_t kJitterStream = 7;

// Base state of charge of the brownout model: a low-battery regime just
// above the rate-cap threshold, so only an episode's load transient sags
// the SoC below the BrownoutThresholds.
constexpr double kBaseSoc = 0.16;

sim::Duration exp_gap(sim::Rng& rng, double per_s) {
  // Mean gap 1/rate seconds; floor at one tick so a huge rate cannot
  // schedule a zero-delay self-perpetuating event.
  const double gap_s = rng.exponential(1.0 / per_s);
  const auto ticks = static_cast<std::int64_t>(gap_s * 1e6);
  return sim::Duration{std::max<std::int64_t>(1, ticks)};
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, const FaultPlan& plan,
                             sim::Rng rng, obs::ObsSink* obs)
    : sim_(sim),
      plan_(plan),
      switch_rng_(rng.fork(kSwitchStream)),
      episode_rng_(rng.fork(kEpisodeStream)),
      touch_rng_(rng.fork(kTouchStream)),
      meter_rng_(rng.fork(kMeterStream)),
      thermal_rng_(rng.fork(kThermalStream)),
      brownout_rng_(rng.fork(kBrownoutStream)),
      jitter_rng_(rng.fork(kJitterStream)) {
  // Counter families register per plan half: a pressure-only plan publishes
  // no fault.* names (and vice versa), so the I3 clean-run checks can
  // assert absence of whichever family the scenario did not ask for.
  if (obs != nullptr && !plan_.fault_empty()) {
    ctr_switch_naks_ = &obs->counters.counter("fault.switch_naks");
    ctr_switch_delays_ = &obs->counters.counter("fault.switch_delays");
    ctr_stuck_episodes_ = &obs->counters.counter("fault.stuck_episodes");
    ctr_capability_losses_ = &obs->counters.counter("fault.capability_losses");
    ctr_touch_dropped_ = &obs->counters.counter("fault.touch_dropped");
    ctr_touch_duplicated_ = &obs->counters.counter("fault.touch_duplicated");
    ctr_touch_delayed_ = &obs->counters.counter("fault.touch_delayed");
    ctr_meter_bitflips_ = &obs->counters.counter("fault.meter_bitflips");
  }
  if (obs != nullptr && !plan_.pressure_empty()) {
    ctr_thermal_episodes_ =
        &obs->counters.counter("pressure.thermal_episodes");
    ctr_brownouts_ = &obs->counters.counter("pressure.brownouts");
    ctr_jitter_storms_ = &obs->counters.counter("pressure.jitter_storms");
    ctr_vsync_dropped_ = &obs->counters.counter("pressure.vsync_dropped");
    ctr_vsync_delayed_ = &obs->counters.counter("pressure.vsync_delayed");
  }
}

void FaultInjector::attach_panel(display::DisplayPanel* panel) {
  assert(panel != nullptr);
  assert(panel_ == nullptr);
  panel_ = panel;
  panel_->set_switch_interceptor(this);
  if (plan_.stuck_per_s > 0.0) schedule_next_stuck(sim_.now());
  if (plan_.capability_loss_per_s > 0.0) {
    schedule_next_capability_loss(sim_.now());
  }
  if (plan_.thermal_per_s > 0.0) schedule_next_thermal(sim_.now());
  if (plan_.brownout_per_s > 0.0) schedule_next_brownout(sim_.now());
  if (plan_.jitter_per_s > 0.0) {
    panel_->set_vsync_fault_hook(this);
    schedule_next_jitter(sim_.now());
  }
}

void FaultInjector::attach_input(input::InputDispatcher* dispatcher) {
  assert(dispatcher != nullptr);
  dispatcher->set_fault_hook(this);
}

void FaultInjector::schedule_next_stuck(sim::Time t) {
  const sim::Duration gap = exp_gap(episode_rng_, plan_.stuck_per_s);
  sim_.at(t + gap, [this](sim::Time now) {
    if (plan_.active(now)) {
      bump(stuck_episodes_, ctr_stuck_episodes_);
      stuck_until_ = std::max(stuck_until_, now + plan_.stuck_duration);
    }
    schedule_next_stuck(now);
  });
}

void FaultInjector::schedule_next_capability_loss(sim::Time t) {
  const sim::Duration gap = exp_gap(episode_rng_, plan_.capability_loss_per_s);
  sim_.at(t + gap, [this](sim::Time now) {
    if (plan_.active(now) && panel_ != nullptr) {
      // Revoke one currently-advertised rate -- never the hardware maximum,
      // which the recovery plane relies on as its always-valid fallback.
      const display::RefreshRateSet& adv = panel_->advertised_rates();
      std::vector<int> candidates;
      for (const int hz : adv.rates()) {
        if (hz != panel_->rates().max_hz()) candidates.push_back(hz);
      }
      // adv.count() >= 2: with the thermal cap possibly holding the maximum
      // revoked, losing the last advertised rate would empty the set.
      if (adv.count() >= 2 && !candidates.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            episode_rng_.uniform_int(0, static_cast<std::int64_t>(
                                            candidates.size() - 1)));
        const int hz = candidates[pick];
        bump(capability_losses_, ctr_capability_losses_);
        panel_->set_rate_advertised(hz, false);
        sim_.at(now + plan_.capability_loss_duration, [this, hz](sim::Time) {
          panel_->set_rate_advertised(hz, true);
        });
      }
    }
    schedule_next_capability_loss(now);
  });
}

void FaultInjector::schedule_next_thermal(sim::Time t) {
  const sim::Duration gap = exp_gap(thermal_rng_, plan_.thermal_per_s);
  sim_.at(t + gap, [this](sim::Time now) {
    if (plan_.pressure_active(now) && panel_ != nullptr) {
      bump(thermal_episodes_, ctr_thermal_episodes_);
      thermal_until_ = std::max(thermal_until_, now + plan_.thermal_duration);
      // Throttle = the DDIC stops advertising its top rate.  Skipped when
      // the set is down to one rate (something must stay advertised); the
      // degradation ladder still caps through the severity feed.
      const display::RefreshRateSet& adv = panel_->advertised_rates();
      const int max_hz = panel_->rates().max_hz();
      if (!thermal_revoked_ && adv.count() >= 2 && adv.supports(max_hz)) {
        thermal_revoked_ = true;
        panel_->set_rate_advertised(max_hz, false);
        arm_thermal_restore();
      }
    }
    schedule_next_thermal(now);
  });
}

void FaultInjector::arm_thermal_restore() {
  sim_.at(thermal_until_, [this](sim::Time now) {
    if (!thermal_revoked_) return;
    if (now < thermal_until_) {
      // The episode was extended while the restore slept: chase the new
      // horizon.
      arm_thermal_restore();
      return;
    }
    thermal_revoked_ = false;
    panel_->set_rate_advertised(panel_->rates().max_hz(), true);
  });
}

void FaultInjector::schedule_next_brownout(sim::Time t) {
  const sim::Duration gap = exp_gap(brownout_rng_, plan_.brownout_per_s);
  sim_.at(t + gap, [this](sim::Time now) {
    if (plan_.pressure_active(now)) {
      bump(brownouts_, ctr_brownouts_);
      brownout_until_ =
          std::max(brownout_until_, now + plan_.brownout_duration);
      // Load transient: sag the modeled SoC below the brownout thresholds.
      // The deeper draws also cross the brightness threshold, raising the
      // episode's severity.
      brownout_soc_ = kBaseSoc - brownout_rng_.uniform(0.04, 0.10);
    }
    schedule_next_brownout(now);
  });
}

void FaultInjector::schedule_next_jitter(sim::Time t) {
  const sim::Duration gap = exp_gap(jitter_rng_, plan_.jitter_per_s);
  sim_.at(t + gap, [this](sim::Time now) {
    if (plan_.pressure_active(now)) {
      bump(jitter_storms_, ctr_jitter_storms_);
      jitter_until_ = std::max(jitter_until_, now + plan_.jitter_duration);
    }
    schedule_next_jitter(now);
  });
}

double FaultInjector::soc(sim::Time t) const {
  return t < brownout_until_ ? brownout_soc_ : kBaseSoc;
}

bool FaultInjector::under_pressure(sim::Time t) const {
  return t < thermal_until_ || t < brownout_until_ || t < jitter_until_;
}

int FaultInjector::severity(sim::Time t) const {
  // Per-class weights express which rung neutralises the class: jitter is
  // absorbed by dropping the boost (1), a thermal cap or rate-threshold
  // brownout wants the max rate capped (2), a deep brownout below the
  // brightness threshold wants the panel dimmed too (3).  Concurrent
  // classes push one rung further each, up to safe mode.
  int live = 0;
  int worst = 0;
  if (t < jitter_until_) {
    ++live;
    worst = std::max(worst, 1);
  }
  if (t < thermal_until_) {
    ++live;
    worst = std::max(worst, 2);
  }
  if (t < brownout_until_) {
    ++live;
    const bool deep = brownout_soc_ < thresholds_.cap_brightness_below_soc;
    worst = std::max(worst, deep ? 3 : 2);
  }
  if (live == 0) return 0;
  return std::min(4, worst + (live - 1));
}

display::VsyncFaultHook::Verdict FaultInjector::on_vsync_tick(
    sim::Time t, int /*refresh_hz*/) {
  display::VsyncFaultHook::Verdict v;
  if (t >= jitter_until_) return v;
  if (jitter_rng_.chance(plan_.jitter_drop_p)) {
    bump(vsync_dropped_, ctr_vsync_dropped_);
    v.drop = true;
    return v;
  }
  if (jitter_rng_.chance(plan_.jitter_late_p)) {
    bump(vsync_delayed_, ctr_vsync_delayed_);
    const double hi = static_cast<double>(plan_.jitter_late_max.ticks);
    v.delay =
        sim::Duration{static_cast<std::int64_t>(jitter_rng_.uniform(1.0, hi))};
  }
  return v;
}

display::SwitchInterceptor::Decision FaultInjector::on_switch_request(
    sim::Time t, int /*from_hz*/, int /*to_hz*/) {
  Decision d;
  if (!plan_.active(t)) return d;
  if (panel_stuck(t)) {
    // A stuck DDIC refuses everything until the episode drains; counted as
    // a NAK each time so retries show up in the fault tallies.
    bump(switch_naks_, ctr_switch_naks_);
    d.ack = false;
    return d;
  }
  if (switch_rng_.chance(plan_.switch_nak_p)) {
    bump(switch_naks_, ctr_switch_naks_);
    d.ack = false;
    return d;
  }
  if (switch_rng_.chance(plan_.switch_delay_p)) {
    bump(switch_delays_, ctr_switch_delays_);
    const double lo = static_cast<double>(plan_.switch_delay_min.ticks);
    const double hi = static_cast<double>(plan_.switch_delay_max.ticks);
    d.settle = sim::Duration{
        static_cast<std::int64_t>(switch_rng_.uniform(lo, hi))};
  }
  return d;
}

input::InputFaultHook::Verdict FaultInjector::on_event(
    const input::TouchEvent& e) {
  input::InputFaultHook::Verdict v;
  if (!plan_.active(e.t)) return v;
  // Mutually exclusive branches: one fault per event keeps reasoning (and
  // the per-class probabilities) simple.
  if (touch_rng_.chance(plan_.touch_drop_p)) {
    bump(touch_dropped_, ctr_touch_dropped_);
    v.drop = true;
  } else if (touch_rng_.chance(plan_.touch_dup_p)) {
    bump(touch_duplicated_, ctr_touch_duplicated_);
    v.duplicate = true;
  } else if (touch_rng_.chance(plan_.touch_delay_p)) {
    bump(touch_delayed_, ctr_touch_delayed_);
    const double lo = static_cast<double>(plan_.touch_delay_min.ticks);
    const double hi = static_cast<double>(plan_.touch_delay_max.ticks);
    v.delay = sim::Duration{
        static_cast<std::int64_t>(touch_rng_.uniform(lo, hi))};
  }
  return v;
}

void FaultInjector::corrupt_samples(sim::Time t,
                                    std::vector<gfx::Rgb888>& samples) {
  if (samples.empty() || !plan_.active(t)) return;
  if (!meter_rng_.chance(plan_.meter_bitflip_p)) return;
  bump(meter_bitflips_, ctr_meter_bitflips_);
  const auto idx = static_cast<std::size_t>(meter_rng_.uniform_int(
      0, static_cast<std::int64_t>(samples.size() - 1)));
  const auto channel = meter_rng_.uniform_int(0, 2);
  const auto bit = static_cast<std::uint8_t>(
      1u << meter_rng_.uniform_int(0, 7));
  gfx::Rgb888& px = samples[idx];
  switch (channel) {
    case 0: px.r ^= bit; break;
    case 1: px.g ^= bit; break;
    default: px.b ^= bit; break;
  }
}

}  // namespace ccdem::fault
