#include "fault/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace ccdem::fault {
namespace {

// Sub-stream ids under the injector's root stream.  Fixed forever: changing
// one fault class's draw pattern must not reshuffle the others.
constexpr std::uint64_t kSwitchStream = 1;
constexpr std::uint64_t kEpisodeStream = 2;
constexpr std::uint64_t kTouchStream = 3;
constexpr std::uint64_t kMeterStream = 4;

sim::Duration exp_gap(sim::Rng& rng, double per_s) {
  // Mean gap 1/rate seconds; floor at one tick so a huge rate cannot
  // schedule a zero-delay self-perpetuating event.
  const double gap_s = rng.exponential(1.0 / per_s);
  const auto ticks = static_cast<std::int64_t>(gap_s * 1e6);
  return sim::Duration{std::max<std::int64_t>(1, ticks)};
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, const FaultPlan& plan,
                             sim::Rng rng, obs::ObsSink* obs)
    : sim_(sim),
      plan_(plan),
      switch_rng_(rng.fork(kSwitchStream)),
      episode_rng_(rng.fork(kEpisodeStream)),
      touch_rng_(rng.fork(kTouchStream)),
      meter_rng_(rng.fork(kMeterStream)) {
  if (obs != nullptr) {
    ctr_switch_naks_ = &obs->counters.counter("fault.switch_naks");
    ctr_switch_delays_ = &obs->counters.counter("fault.switch_delays");
    ctr_stuck_episodes_ = &obs->counters.counter("fault.stuck_episodes");
    ctr_capability_losses_ = &obs->counters.counter("fault.capability_losses");
    ctr_touch_dropped_ = &obs->counters.counter("fault.touch_dropped");
    ctr_touch_duplicated_ = &obs->counters.counter("fault.touch_duplicated");
    ctr_touch_delayed_ = &obs->counters.counter("fault.touch_delayed");
    ctr_meter_bitflips_ = &obs->counters.counter("fault.meter_bitflips");
  }
}

void FaultInjector::attach_panel(display::DisplayPanel* panel) {
  assert(panel != nullptr);
  assert(panel_ == nullptr);
  panel_ = panel;
  panel_->set_switch_interceptor(this);
  if (plan_.stuck_per_s > 0.0) schedule_next_stuck(sim_.now());
  if (plan_.capability_loss_per_s > 0.0) {
    schedule_next_capability_loss(sim_.now());
  }
}

void FaultInjector::attach_input(input::InputDispatcher* dispatcher) {
  assert(dispatcher != nullptr);
  dispatcher->set_fault_hook(this);
}

void FaultInjector::schedule_next_stuck(sim::Time t) {
  const sim::Duration gap = exp_gap(episode_rng_, plan_.stuck_per_s);
  sim_.at(t + gap, [this](sim::Time now) {
    if (plan_.active(now)) {
      bump(stuck_episodes_, ctr_stuck_episodes_);
      stuck_until_ = std::max(stuck_until_, now + plan_.stuck_duration);
    }
    schedule_next_stuck(now);
  });
}

void FaultInjector::schedule_next_capability_loss(sim::Time t) {
  const sim::Duration gap = exp_gap(episode_rng_, plan_.capability_loss_per_s);
  sim_.at(t + gap, [this](sim::Time now) {
    if (plan_.active(now) && panel_ != nullptr) {
      // Revoke one currently-advertised rate -- never the hardware maximum,
      // which the recovery plane relies on as its always-valid fallback.
      const display::RefreshRateSet& adv = panel_->advertised_rates();
      std::vector<int> candidates;
      for (const int hz : adv.rates()) {
        if (hz != panel_->rates().max_hz()) candidates.push_back(hz);
      }
      if (!candidates.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            episode_rng_.uniform_int(0, static_cast<std::int64_t>(
                                            candidates.size() - 1)));
        const int hz = candidates[pick];
        bump(capability_losses_, ctr_capability_losses_);
        panel_->set_rate_advertised(hz, false);
        sim_.at(now + plan_.capability_loss_duration, [this, hz](sim::Time) {
          panel_->set_rate_advertised(hz, true);
        });
      }
    }
    schedule_next_capability_loss(now);
  });
}

display::SwitchInterceptor::Decision FaultInjector::on_switch_request(
    sim::Time t, int /*from_hz*/, int /*to_hz*/) {
  Decision d;
  if (!plan_.active(t)) return d;
  if (panel_stuck(t)) {
    // A stuck DDIC refuses everything until the episode drains; counted as
    // a NAK each time so retries show up in the fault tallies.
    bump(switch_naks_, ctr_switch_naks_);
    d.ack = false;
    return d;
  }
  if (switch_rng_.chance(plan_.switch_nak_p)) {
    bump(switch_naks_, ctr_switch_naks_);
    d.ack = false;
    return d;
  }
  if (switch_rng_.chance(plan_.switch_delay_p)) {
    bump(switch_delays_, ctr_switch_delays_);
    const double lo = static_cast<double>(plan_.switch_delay_min.ticks);
    const double hi = static_cast<double>(plan_.switch_delay_max.ticks);
    d.settle = sim::Duration{
        static_cast<std::int64_t>(switch_rng_.uniform(lo, hi))};
  }
  return d;
}

input::InputFaultHook::Verdict FaultInjector::on_event(
    const input::TouchEvent& e) {
  Verdict v;
  if (!plan_.active(e.t)) return v;
  // Mutually exclusive branches: one fault per event keeps reasoning (and
  // the per-class probabilities) simple.
  if (touch_rng_.chance(plan_.touch_drop_p)) {
    bump(touch_dropped_, ctr_touch_dropped_);
    v.drop = true;
  } else if (touch_rng_.chance(plan_.touch_dup_p)) {
    bump(touch_duplicated_, ctr_touch_duplicated_);
    v.duplicate = true;
  } else if (touch_rng_.chance(plan_.touch_delay_p)) {
    bump(touch_delayed_, ctr_touch_delayed_);
    const double lo = static_cast<double>(plan_.touch_delay_min.ticks);
    const double hi = static_cast<double>(plan_.touch_delay_max.ticks);
    v.delay = sim::Duration{
        static_cast<std::int64_t>(touch_rng_.uniform(lo, hi))};
  }
  return v;
}

void FaultInjector::corrupt_samples(sim::Time t,
                                    std::vector<gfx::Rgb888>& samples) {
  if (samples.empty() || !plan_.active(t)) return;
  if (!meter_rng_.chance(plan_.meter_bitflip_p)) return;
  bump(meter_bitflips_, ctr_meter_bitflips_);
  const auto idx = static_cast<std::size_t>(meter_rng_.uniform_int(
      0, static_cast<std::int64_t>(samples.size() - 1)));
  const auto channel = meter_rng_.uniform_int(0, 2);
  const auto bit = static_cast<std::uint8_t>(
      1u << meter_rng_.uniform_int(0, 7));
  gfx::Rgb888& px = samples[idx];
  switch (channel) {
    case 0: px.r ^= bit; break;
    case 1: px.g ^= bit; break;
    default: px.b ^= bit; break;
  }
}

}  // namespace ccdem::fault
