// FaultPlan: the declarative description of what goes wrong, and how often.
//
// The paper's control loop works because a kernel patch makes refresh-rate
// switching on the Galaxy S3 land instantly and reliably; real DDICs NAK
// switches, take variable time to settle, get stuck, transiently drop
// capabilities, lose touch IRQs, and return corrupted reads.  A FaultPlan is
// pure data -- per-event probabilities and Poisson episode rates -- that the
// FaultInjector turns into deterministic, RNG-seeded fault streams.  The
// default-constructed plan is empty: no injector is built, no fault.*
// counters register, and every hot path behaves bit-identically to a build
// without the fault layer at all (the zero-cost-when-disabled contract,
// DESIGN.md section 9).
#pragma once

#include "sim/time.h"

namespace ccdem::fault {

struct FaultPlan {
  // --- refresh-switch faults (per set_refresh_rate request) ---------------
  /// Probability the DDIC NAKs a switch request outright.
  double switch_nak_p = 0.0;
  /// Probability an accepted switch needs extra settle time before the
  /// timing generator reprograms (uniform in [min, max]).
  double switch_delay_p = 0.0;
  sim::Duration switch_delay_min = sim::milliseconds(4);
  sim::Duration switch_delay_max = sim::milliseconds(40);

  // --- stuck-at-rate episodes (Poisson arrivals) ---------------------------
  /// Mean episodes per simulated second; while an episode is live the panel
  /// keeps scanning out at its current rate and NAKs every switch request.
  double stuck_per_s = 0.0;
  sim::Duration stuck_duration = sim::milliseconds(600);

  // --- transient capability loss (Poisson arrivals) ------------------------
  /// Mean episodes per second; each revokes one currently-advertised
  /// non-maximum rate from the panel's advertised set for the duration (the
  /// maximum always survives, so a fallback target always exists).
  double capability_loss_per_s = 0.0;
  sim::Duration capability_loss_duration = sim::seconds(2);

  // --- touch-path faults (per delivered event) -----------------------------
  double touch_drop_p = 0.0;
  double touch_dup_p = 0.0;
  /// Probability an event is delivered late -- with its ORIGINAL timestamp,
  /// so downstream listeners see out-of-order times, as a deferred IRQ
  /// produces (uniform delay in [min, max]).
  double touch_delay_p = 0.0;
  sim::Duration touch_delay_min = sim::milliseconds(8);
  sim::Duration touch_delay_max = sim::milliseconds(60);

  // --- meter read corruption (per classified frame) ------------------------
  /// Probability one random bit of one random retained grid sample flips
  /// before the comparison (a bus/readback corruption; makes a redundant
  /// frame look meaningful and vice versa).
  double meter_bitflip_p = 0.0;

  /// Faults stop firing at this simulated time; ticks == 0 means "forever".
  /// Tests point this at mid-run so safe-mode re-arm becomes observable.
  sim::Time active_until{};

  /// True when no fault class can ever fire -- the default, under which the
  /// device skips building an injector entirely.
  [[nodiscard]] bool empty() const;

  /// Whether faults may still fire at `t`.
  [[nodiscard]] bool active(sim::Time t) const {
    return active_until.ticks == 0 || t < active_until;
  }

  /// The characterized "nominal" envelope the robustness bench sweeps
  /// around: every class on, at rates a real flaky panel could plausibly
  /// show, and within which the self-healing stack holds >= 95 % quality.
  [[nodiscard]] static FaultPlan nominal();

  /// This plan with every probability and episode rate multiplied by
  /// `factor` (probabilities clamp to 1); durations are unchanged.
  [[nodiscard]] FaultPlan scaled(double factor) const;
};

}  // namespace ccdem::fault
