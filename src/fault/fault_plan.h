// FaultPlan: the declarative description of what goes wrong, and how often.
//
// The paper's control loop works because a kernel patch makes refresh-rate
// switching on the Galaxy S3 land instantly and reliably; real DDICs NAK
// switches, take variable time to settle, get stuck, transiently drop
// capabilities, lose touch IRQs, and return corrupted reads.  A FaultPlan is
// pure data -- per-event probabilities and Poisson episode rates -- that the
// FaultInjector turns into deterministic, RNG-seeded fault streams.  The
// default-constructed plan is empty: no injector is built, no fault.*
// counters register, and every hot path behaves bit-identically to a build
// without the fault layer at all (the zero-cost-when-disabled contract,
// DESIGN.md section 9).
#pragma once

#include "sim/time.h"

namespace ccdem::fault {

struct FaultPlan {
  // --- refresh-switch faults (per set_refresh_rate request) ---------------
  /// Probability the DDIC NAKs a switch request outright.
  double switch_nak_p = 0.0;
  /// Probability an accepted switch needs extra settle time before the
  /// timing generator reprograms (uniform in [min, max]).
  double switch_delay_p = 0.0;
  sim::Duration switch_delay_min = sim::milliseconds(4);
  sim::Duration switch_delay_max = sim::milliseconds(40);

  // --- stuck-at-rate episodes (Poisson arrivals) ---------------------------
  /// Mean episodes per simulated second; while an episode is live the panel
  /// keeps scanning out at its current rate and NAKs every switch request.
  double stuck_per_s = 0.0;
  sim::Duration stuck_duration = sim::milliseconds(600);

  // --- transient capability loss (Poisson arrivals) ------------------------
  /// Mean episodes per second; each revokes one currently-advertised
  /// non-maximum rate from the panel's advertised set for the duration (the
  /// maximum always survives, so a fallback target always exists).
  double capability_loss_per_s = 0.0;
  sim::Duration capability_loss_duration = sim::seconds(2);

  // --- touch-path faults (per delivered event) -----------------------------
  double touch_drop_p = 0.0;
  double touch_dup_p = 0.0;
  /// Probability an event is delivered late -- with its ORIGINAL timestamp,
  /// so downstream listeners see out-of-order times, as a deferred IRQ
  /// produces (uniform delay in [min, max]).
  double touch_delay_p = 0.0;
  sim::Duration touch_delay_min = sim::milliseconds(8);
  sim::Duration touch_delay_max = sim::milliseconds(60);

  // --- meter read corruption (per classified frame) ------------------------
  /// Probability one random bit of one random retained grid sample flips
  /// before the comparison (a bus/readback corruption; makes a redundant
  /// frame look meaningful and vice versa).
  double meter_bitflip_p = 0.0;

  // --- system-pressure episodes (Poisson arrivals, DESIGN.md section 14) ---
  // Unlike the link/sensor faults above, pressure classes model sustained
  // environmental stress: the right response is to *shed quality in order*
  // (core::DegradationLadderStage), not to retry.

  /// Thermal throttle: while an episode is live the modeled die temperature
  /// is over the throttle trip point and the panel's top advertised rate is
  /// revoked (the rate ladder is capped one rung down from hardware max).
  double thermal_per_s = 0.0;
  sim::Duration thermal_duration = sim::milliseconds(1200);

  /// Battery brownout: while an episode is live the modeled state of charge
  /// sags below the brownout thresholds (power::BrownoutThresholds), which
  /// caps max rate and brightness at the ladder's dim rung.
  double brownout_per_s = 0.0;
  sim::Duration brownout_duration = sim::milliseconds(1500);

  /// Vsync jitter/deadline-miss storm: while a storm is live each panel
  /// vsync is independently delivered late (uniform in (0, jitter_late_max])
  /// with probability jitter_late_p, or dropped outright (the frame never
  /// reaches the observers) with probability jitter_drop_p.
  double jitter_per_s = 0.0;
  sim::Duration jitter_duration = sim::milliseconds(800);
  double jitter_late_p = 0.5;
  double jitter_drop_p = 0.2;
  sim::Duration jitter_late_max = sim::milliseconds(6);

  /// Faults stop firing at this simulated time; ticks == 0 means "forever".
  /// Tests point this at mid-run so safe-mode re-arm becomes observable.
  sim::Time active_until{};

  /// Pressure episodes stop *arriving* at this simulated time (episodes
  /// already live drain out over their durations); ticks == 0 = "forever".
  /// Separate from active_until so invariant I8 can watch the ladder return
  /// to rung 0 while link/sensor faults keep their own horizon.
  sim::Time pressure_until{};

  /// True when no fault class can ever fire -- the default, under which the
  /// device skips building an injector entirely.
  [[nodiscard]] bool empty() const;

  /// True when none of the eight link/sensor fault classes can fire.
  [[nodiscard]] bool fault_empty() const;

  /// True when none of the three pressure episode classes can fire -- the
  /// default, under which the degradation ladder stays out of the pipeline
  /// and no pressure.*/degrade.* counters register.
  [[nodiscard]] bool pressure_empty() const;

  /// Whether faults may still fire at `t`.
  [[nodiscard]] bool active(sim::Time t) const {
    return active_until.ticks == 0 || t < active_until;
  }

  /// Whether pressure episodes may still arrive at `t`.
  [[nodiscard]] bool pressure_active(sim::Time t) const {
    return pressure_until.ticks == 0 || t < pressure_until;
  }

  /// The characterized "nominal" envelope the robustness bench sweeps
  /// around: every class on, at rates a real flaky panel could plausibly
  /// show, and within which the self-healing stack holds >= 95 % quality.
  [[nodiscard]] static FaultPlan nominal();

  /// The characterized "nominal" pressure envelope (pressure classes only;
  /// every link/sensor probability stays zero).  bench_pressure_envelope
  /// sweeps multiples of this plan and the ladder must hold >= 95 % quality
  /// at 1x.
  [[nodiscard]] static FaultPlan pressure_nominal();

  /// This plan with every probability and episode rate multiplied by
  /// `factor` (probabilities clamp to 1); durations are unchanged.
  [[nodiscard]] FaultPlan scaled(double factor) const;
};

}  // namespace ccdem::fault
