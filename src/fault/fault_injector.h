// FaultInjector: turns a FaultPlan into deterministic fault streams.
//
// One injector wraps one device's panel and input path.  It implements the
// three interposition interfaces the substrates expose --
// display::SwitchInterceptor (NAKs, settle jitter, stuck episodes),
// input::InputFaultHook (drop / duplicate / late touch events) and
// core::SampleFault (bit flips in the meter's retained grid reads) -- and
// schedules its Poisson episodes (stuck-at-rate, capability loss) on the
// device's simulator.
//
// Determinism: the injector owns an RNG forked from the device seed
// (SimulatedDevice::kFaultRngStream) and sub-forks one stream per fault
// class, so e.g. raising the touch-drop rate never perturbs the switch-NAK
// sequence.  Identical (seed, plan) => identical faults, serially or under
// the FleetRunner -- the fault-envelope bench asserts counter identity.
//
// Observability: every injected fault increments a fault.* counter in the
// ObsSink passed at construction (registered there and then, so a device
// without an injector publishes no fault.* names at all).
#pragma once

#include <cstdint>
#include <vector>

#include "core/content_rate_meter.h"
#include "core/control_config.h"
#include "display/display_panel.h"
#include "fault/fault_plan.h"
#include "gfx/pixel.h"
#include "input/input_dispatcher.h"
#include "obs/obs.h"
#include "power/battery.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ccdem::fault {

class FaultInjector final : public display::SwitchInterceptor,
                            public display::VsyncFaultHook,
                            public input::InputFaultHook,
                            public core::SampleFault,
                            public core::PressureSource {
 public:
  /// `obs` may be null (no counters).  The injector must outlive the panel
  /// and dispatcher it attaches to.
  FaultInjector(sim::Simulator& sim, const FaultPlan& plan, sim::Rng rng,
                obs::ObsSink* obs = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the switch interceptor and schedules the stuck / capability
  /// episode processes.  Call once, right after the panel is built.
  void attach_panel(display::DisplayPanel* panel);

  /// Installs the input fault hook.
  void attach_input(input::InputDispatcher* dispatcher);

  // --- display::SwitchInterceptor -----------------------------------------
  Decision on_switch_request(sim::Time t, int from_hz, int to_hz) override;

  // --- display::VsyncFaultHook (jitter storms) ----------------------------
  display::VsyncFaultHook::Verdict on_vsync_tick(sim::Time t,
                                                 int refresh_hz) override;

  // --- input::InputFaultHook ----------------------------------------------
  input::InputFaultHook::Verdict on_event(const input::TouchEvent& e) override;

  // --- core::PressureSource (degradation ladder feed) ---------------------
  [[nodiscard]] bool under_pressure(sim::Time t) const override;
  [[nodiscard]] int severity(sim::Time t) const override;

  // --- core::SampleFault ---------------------------------------------------
  void corrupt_samples(sim::Time t,
                       std::vector<gfx::Rgb888>& samples) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// True while a stuck-at-rate episode is live at `t`.
  [[nodiscard]] bool panel_stuck(sim::Time t) const {
    return t < stuck_until_;
  }

  // Lifetime fault tallies (mirrored into the fault.* counters when an
  // ObsSink is attached).
  [[nodiscard]] std::uint64_t switch_naks() const { return switch_naks_; }
  [[nodiscard]] std::uint64_t switch_delays() const { return switch_delays_; }
  [[nodiscard]] std::uint64_t stuck_episodes() const {
    return stuck_episodes_;
  }
  [[nodiscard]] std::uint64_t capability_losses() const {
    return capability_losses_;
  }
  [[nodiscard]] std::uint64_t touch_dropped() const { return touch_dropped_; }
  [[nodiscard]] std::uint64_t touch_duplicated() const {
    return touch_duplicated_;
  }
  [[nodiscard]] std::uint64_t touch_delayed() const { return touch_delayed_; }
  [[nodiscard]] std::uint64_t meter_bitflips() const {
    return meter_bitflips_;
  }
  [[nodiscard]] std::uint64_t thermal_episodes() const {
    return thermal_episodes_;
  }
  [[nodiscard]] std::uint64_t brownouts() const { return brownouts_; }
  [[nodiscard]] std::uint64_t jitter_storms() const { return jitter_storms_; }
  [[nodiscard]] std::uint64_t vsync_dropped() const { return vsync_dropped_; }
  [[nodiscard]] std::uint64_t vsync_delayed() const { return vsync_delayed_; }

  /// The modeled state of charge the brownout plane reads at `t`: the
  /// low-battery base while healthy, sagged below the brownout thresholds
  /// while an episode's load transient is live.
  [[nodiscard]] double soc(sim::Time t) const;

 private:
  void schedule_next_stuck(sim::Time t);
  void schedule_next_capability_loss(sim::Time t);
  void schedule_next_thermal(sim::Time t);
  void schedule_next_brownout(sim::Time t);
  void schedule_next_jitter(sim::Time t);
  void arm_thermal_restore();
  void bump(std::uint64_t& tally, std::uint64_t* ctr) {
    ++tally;
    if (ctr != nullptr) ++*ctr;
  }

  sim::Simulator& sim_;
  FaultPlan plan_;
  // One sub-stream per fault class: draws in one class never shift another.
  sim::Rng switch_rng_;
  sim::Rng episode_rng_;
  sim::Rng touch_rng_;
  sim::Rng meter_rng_;
  // Pressure episode classes get their own streams too, so turning pressure
  // on never perturbs the legacy fault sequences (and vice versa).
  sim::Rng thermal_rng_;
  sim::Rng brownout_rng_;
  sim::Rng jitter_rng_;

  display::DisplayPanel* panel_ = nullptr;
  sim::Time stuck_until_{};

  // Pressure episode state.  Episodes max-extend their `until_`, so
  // overlapping arrivals merge into one longer episode.
  sim::Time thermal_until_{};
  sim::Time brownout_until_{};
  sim::Time jitter_until_{};
  /// True while the thermal cap has revoked the hardware maximum rate.
  bool thermal_revoked_ = false;
  /// SoC the brownout plane reads while an episode's sag is live.
  double brownout_soc_ = 1.0;
  power::BrownoutThresholds thresholds_ = power::BrownoutThresholds::galaxy_s3();

  std::uint64_t switch_naks_ = 0;
  std::uint64_t switch_delays_ = 0;
  std::uint64_t stuck_episodes_ = 0;
  std::uint64_t capability_losses_ = 0;
  std::uint64_t touch_dropped_ = 0;
  std::uint64_t touch_duplicated_ = 0;
  std::uint64_t touch_delayed_ = 0;
  std::uint64_t meter_bitflips_ = 0;
  std::uint64_t thermal_episodes_ = 0;
  std::uint64_t brownouts_ = 0;
  std::uint64_t jitter_storms_ = 0;
  std::uint64_t vsync_dropped_ = 0;
  std::uint64_t vsync_delayed_ = 0;

  std::uint64_t* ctr_switch_naks_ = nullptr;
  std::uint64_t* ctr_switch_delays_ = nullptr;
  std::uint64_t* ctr_stuck_episodes_ = nullptr;
  std::uint64_t* ctr_capability_losses_ = nullptr;
  std::uint64_t* ctr_touch_dropped_ = nullptr;
  std::uint64_t* ctr_touch_duplicated_ = nullptr;
  std::uint64_t* ctr_touch_delayed_ = nullptr;
  std::uint64_t* ctr_meter_bitflips_ = nullptr;
  std::uint64_t* ctr_thermal_episodes_ = nullptr;
  std::uint64_t* ctr_brownouts_ = nullptr;
  std::uint64_t* ctr_jitter_storms_ = nullptr;
  std::uint64_t* ctr_vsync_dropped_ = nullptr;
  std::uint64_t* ctr_vsync_delayed_ = nullptr;
};

}  // namespace ccdem::fault
