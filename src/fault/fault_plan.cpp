#include "fault/fault_plan.h"

#include <algorithm>

namespace ccdem::fault {

bool FaultPlan::fault_empty() const {
  return switch_nak_p <= 0.0 && switch_delay_p <= 0.0 && stuck_per_s <= 0.0 &&
         capability_loss_per_s <= 0.0 && touch_drop_p <= 0.0 &&
         touch_dup_p <= 0.0 && touch_delay_p <= 0.0 && meter_bitflip_p <= 0.0;
}

bool FaultPlan::pressure_empty() const {
  return thermal_per_s <= 0.0 && brownout_per_s <= 0.0 && jitter_per_s <= 0.0;
}

bool FaultPlan::empty() const { return fault_empty() && pressure_empty(); }

FaultPlan FaultPlan::nominal() {
  FaultPlan p;
  p.switch_nak_p = 0.05;
  p.switch_delay_p = 0.10;
  p.stuck_per_s = 0.02;
  p.capability_loss_per_s = 0.02;
  p.touch_drop_p = 0.05;
  p.touch_dup_p = 0.02;
  p.touch_delay_p = 0.05;
  p.meter_bitflip_p = 0.01;
  return p;
}

FaultPlan FaultPlan::pressure_nominal() {
  FaultPlan p;
  p.thermal_per_s = 0.08;
  p.brownout_per_s = 0.04;
  p.jitter_per_s = 0.10;
  return p;
}

FaultPlan FaultPlan::scaled(double factor) const {
  const auto prob = [factor](double p) {
    return std::clamp(p * factor, 0.0, 1.0);
  };
  const auto rate = [factor](double r) { return std::max(0.0, r * factor); };
  FaultPlan s = *this;
  s.switch_nak_p = prob(switch_nak_p);
  s.switch_delay_p = prob(switch_delay_p);
  s.stuck_per_s = rate(stuck_per_s);
  s.capability_loss_per_s = rate(capability_loss_per_s);
  s.touch_drop_p = prob(touch_drop_p);
  s.touch_dup_p = prob(touch_dup_p);
  s.touch_delay_p = prob(touch_delay_p);
  s.meter_bitflip_p = prob(meter_bitflip_p);
  s.thermal_per_s = rate(thermal_per_s);
  s.brownout_per_s = rate(brownout_per_s);
  s.jitter_per_s = rate(jitter_per_s);
  // The per-vsync storm probabilities are part of the storm's character,
  // not its frequency: scaling sweeps how often storms arrive.
  return s;
}

}  // namespace ccdem::fault
