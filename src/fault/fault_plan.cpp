#include "fault/fault_plan.h"

#include <algorithm>

namespace ccdem::fault {

bool FaultPlan::empty() const {
  return switch_nak_p <= 0.0 && switch_delay_p <= 0.0 && stuck_per_s <= 0.0 &&
         capability_loss_per_s <= 0.0 && touch_drop_p <= 0.0 &&
         touch_dup_p <= 0.0 && touch_delay_p <= 0.0 && meter_bitflip_p <= 0.0;
}

FaultPlan FaultPlan::nominal() {
  FaultPlan p;
  p.switch_nak_p = 0.05;
  p.switch_delay_p = 0.10;
  p.stuck_per_s = 0.02;
  p.capability_loss_per_s = 0.02;
  p.touch_drop_p = 0.05;
  p.touch_dup_p = 0.02;
  p.touch_delay_p = 0.05;
  p.meter_bitflip_p = 0.01;
  return p;
}

FaultPlan FaultPlan::scaled(double factor) const {
  const auto prob = [factor](double p) {
    return std::clamp(p * factor, 0.0, 1.0);
  };
  FaultPlan s = *this;
  s.switch_nak_p = prob(switch_nak_p);
  s.switch_delay_p = prob(switch_delay_p);
  s.stuck_per_s = std::max(0.0, stuck_per_s * factor);
  s.capability_loss_per_s = std::max(0.0, capability_loss_per_s * factor);
  s.touch_drop_p = prob(touch_drop_p);
  s.touch_dup_p = prob(touch_dup_p);
  s.touch_delay_p = prob(touch_delay_p);
  s.meter_bitflip_p = prob(meter_bitflip_p);
  return s;
}

}  // namespace ccdem::fault
