#include "core/self_refresh_controller.h"

namespace ccdem::core {

SelfRefreshController::SelfRefreshController(sim::Simulator& sim,
                                             gfx::SurfaceFlinger& flinger,
                                             power::DevicePowerModel& power,
                                             SelfRefreshConfig config)
    : power_(power), config_(config), last_frame_(sim.now()) {
  flinger.add_listener(this);
  sim.every(config_.eval_period, [this](sim::Time t) {
    if (!running_) return false;
    evaluate(t);
    return true;
  });
}

void SelfRefreshController::on_frame(const gfx::FrameInfo& info,
                                     const gfx::Framebuffer&) {
  last_frame_ = info.composed_at;
  if (in_self_refresh_) exit(info.composed_at);
}

void SelfRefreshController::evaluate(sim::Time t) {
  if (!in_self_refresh_ && t - last_frame_ >= config_.enter_after) {
    enter(t);
  }
}

void SelfRefreshController::enter(sim::Time t) {
  in_self_refresh_ = true;
  entered_at_ = t;
  ++entries_;
  power_.add_energy_mj(t, config_.transition_mj, power::EnergyTag::kRateSwitch);
  power_.set_link_active(t, false);
}

void SelfRefreshController::exit(sim::Time t) {
  in_self_refresh_ = false;
  accumulated_ = accumulated_ + (t - entered_at_);
  power_.add_energy_mj(t, config_.transition_mj, power::EnergyTag::kRateSwitch);
  power_.set_link_active(t, true);
}

sim::Duration SelfRefreshController::time_in_self_refresh(
    sim::Time now) const {
  sim::Duration total = accumulated_;
  if (in_self_refresh_) total = total + (now - entered_at_);
  return total;
}

}  // namespace ccdem::core
