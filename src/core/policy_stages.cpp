#include "core/policy_stages.h"

#include <algorithm>
#include <cmath>

namespace ccdem::core {

int resolve_boost_hz(const display::RefreshRateSet& advertised, int boost_hz) {
  // Advertised set == the hardware set unless the fault layer revoked
  // levels, so the stock behaviour is unchanged.
  if (boost_hz > 0 && advertised.supports(boost_hz)) return boost_hz;
  return advertised.max_hz();
}

// --- SectionStage ----------------------------------------------------------

std::optional<RateProposal> SectionStage::propose(const PolicyInput& in) {
  RateProposal p;
  p.target_hz = table_.rate_for(in.content_fps);
  return p;
}

// --- NaiveStage ------------------------------------------------------------

std::optional<RateProposal> NaiveStage::propose(const PolicyInput& in) {
  RateProposal p;
  p.target_hz = rates_.ceil_rate(in.content_fps);
  return p;
}

// --- HysteresisStage -------------------------------------------------------

std::optional<RateProposal> HysteresisStage::propose(const PolicyInput& in) {
  const int want = in.best_policy_hz(in.current_hz);
  if (want >= in.current_hz) {
    pending_down_ = 0;
    return std::nullopt;  // increases (and holds) apply immediately
  }
  if (++pending_down_ >= down_confirmations_) {
    pending_down_ = 0;
    return std::nullopt;  // decrease confirmed; let the source's rate win
  }
  // Not yet confirmed: hold the current rate.  Same priority + higher rate
  // out-arbitrates the source's lower proposal.
  RateProposal p;
  p.target_hz = in.current_hz;
  return p;
}

// --- BoostStage ------------------------------------------------------------

std::optional<RateProposal> BoostStage::propose(const PolicyInput& in) {
  if (!in.boost_active) return std::nullopt;
  // While boosted, never go below the policy's own choice (a game whose
  // content warrants more than the boost cap keeps its higher rate) --
  // max-rate arbitration provides exactly that.
  RateProposal p;
  p.target_hz = resolve_boost_hz(*in.advertised, boost_hz_);
  p.policy = false;
  return p;
}

// --- FloorStage ------------------------------------------------------------

std::optional<RateProposal> FloorStage::propose(const PolicyInput& in) {
  // The floor is validated against the *hardware* ladder (legacy semantics:
  // a fault-revoked level still floors -- the push simply NAKs and the
  // recovery plane deals with it).
  if (!in.rates->supports(min_hz_)) return std::nullopt;
  RateProposal p;
  p.target_hz = min_hz_;
  p.policy = false;
  return p;
}

// --- PredictiveRateStage ---------------------------------------------------

PredictiveRateStage::PredictiveRateStage(SectionTable table,
                                         PredictiveConfig config)
    : table_(std::move(table)), config_(config) {
  window_.resize(std::max(2, config_.window));
}

void PredictiveRateStage::register_obs(obs::ObsSink* obs) {
  ctr_presteps_ = &obs->counters.counter("policy.predictive.presteps");
}

std::optional<RateProposal> PredictiveRateStage::propose(
    const PolicyInput& in) {
  const double fps = in.content_fps;
  window_[window_head_] = fps;
  window_head_ = (window_head_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());

  const int reactive = table_.rate_for(fps);
  if (target_hz_ == 0) target_hz_ = reactive;

  if (reactive > target_hz_) {
    // Up-steps are instant (cooldown_up == 1 in the DynClockVita idiom):
    // quality first, exactly like the reactive table.
    target_hz_ = reactive;
    down_streak_ = 0;
  } else {
    // Down candidate: the reactive rate, extrapolated further down when
    // the window shows a *stable* downtrend.
    double predicted = fps;
    if (window_count_ == window_.size()) {
      const std::size_t n = window_.size();
      // Straight-line trend over the ring, oldest (at head_) to newest.
      const double oldest = window_[window_head_];
      const double slope = (fps - oldest) / static_cast<double>(n - 1);
      // Stability = residual spread around the trend line, not raw
      // variance: a clean downtrend is exactly the signal prediction
      // wants, and raw variance would veto it in proportion to its own
      // slope.  Oscillating content fits no line and stays gated.
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double fit = oldest + slope * static_cast<double>(i);
        const double v = window_[(window_head_ + i) % n];
        var += (v - fit) * (v - fit);
      }
      var /= static_cast<double>(n);
      if (std::sqrt(var) <= config_.stability_threshold) {
        predicted = fps + std::min(0.0, slope) * config_.lead;
        if (predicted < 0.0) predicted = 0.0;
      }
    }
    const int candidate = std::min(reactive, table_.rate_for(predicted));
    if (candidate < target_hz_) {
      ++down_streak_;
      if (down_streak_ >= config_.down_confirmations &&
          in.now - last_down_ >= config_.down_cooldown) {
        if (candidate < reactive && ctr_presteps_ != nullptr) {
          ++*ctr_presteps_;  // stepped below the reactive table: a pre-step
        }
        target_hz_ = candidate;
        down_streak_ = 0;
        last_down_ = in.now;
      }
    } else {
      down_streak_ = 0;
    }
  }

  RateProposal p;
  p.target_hz = target_hz_;
  return p;
}

// --- DvfsCoControlStage ----------------------------------------------------

void DvfsCoControlStage::register_obs(obs::ObsSink* obs) {
  ctr_caps_ = &obs->counters.counter("policy.dvfs.caps");
  gauge_rung_ = &obs->counters.gauge("policy.dvfs.rung");
  *gauge_rung_ = static_cast<double>(rung_);
}

double DvfsCoControlStage::capacity_fps(int rung,
                                        const PolicyInput& in) const {
  return static_cast<double>(in.rates->max_hz()) *
         static_cast<double>(rung + 1) / static_cast<double>(config_.rungs);
}

void DvfsCoControlStage::adjust(const PolicyInput& in, bool preempted,
                                int& target_hz) {
  const double fps = in.content_fps;
  const double delta = has_last_ ? std::abs(fps - last_fps_) : 0.0;
  last_fps_ = fps;
  has_last_ = true;

  if (delta > config_.instability_fps) {
    // Frametime instability: the GPU needs headroom now.
    if (rung_ < config_.rungs - 1) ++rung_;
    stable_streak_ = 0;
  } else if (++stable_streak_ >= config_.stable_ticks) {
    if (rung_ > 0 && capacity_fps(rung_ - 1, in) >= fps * config_.headroom) {
      --rung_;
    }
    stable_streak_ = 0;
  }
  if (gauge_rung_ != nullptr) *gauge_rung_ = static_cast<double>(rung_);

  // While boosted the quality contract owns the rate; while preempted the
  // recovery plane does.  Cap only in normal operation.
  if (preempted || in.boost_active) return;
  int cap = in.rates->ceil_rate(capacity_fps(rung_, in));
  if (min_hz_ > 0 && in.rates->supports(min_hz_)) {
    cap = std::max(cap, min_hz_);
  }
  if (target_hz > cap) {
    target_hz = cap;
    if (ctr_caps_ != nullptr) ++*ctr_caps_;
  }
}

// --- SelfRefreshStage ------------------------------------------------------

void SelfRefreshStage::start(sim::Simulator& sim) {
  // Constructed here, not in the stage constructor: the controller
  // self-registers a frame listener and an evaluation series, and the
  // canonical registration order (after the owning DPM's) is part of the
  // reproducible contract.
  ctrl_ = std::make_unique<SelfRefreshController>(sim, flinger_, power_,
                                                  config_);
}

void SelfRefreshStage::stop() {
  if (ctrl_) ctrl_->stop();
}

// --- RecoveryStage ---------------------------------------------------------

void RecoveryStage::register_obs(obs::ObsSink* obs) {
  obs_ = obs;
  // Shared slots with the actuation plane (Counters dedups by name): the
  // giveup counter counts both the retry ladder's and the eval-side
  // timeouts, exactly as the monolithic controller did.
  ctr_watchdog_fallbacks_ = &obs->counters.counter("dpm.watchdog_fallbacks");
  ctr_retry_giveups_ = &obs->counters.counter("dpm.retry_giveups");
}

std::optional<int> RecoveryStage::preempt(const PolicyInput& in) {
  if (host_->safe_mode() && in.now >= host_->safe_until()) {
    // Cooldown elapsed: re-arm content-rate control.
    host_->rearm_safe_mode(in.now);
  }
  if (host_->safe_mode()) {
    // Content-rate control suspended: hold the maximum advertised rate.
    return in.advertised->max_hz();
  }
  return std::nullopt;
}

void RecoveryStage::adjust(const PolicyInput& in, bool preempted,
                           int& target_hz) {
  const sim::Time t = in.now;
  if (!preempted) {
    // Revalidate against what the DDIC currently advertises (identity
    // while nothing is revoked; otherwise the next level up survives the
    // capability loss -- never a lower one).
    target_hz = in.advertised->ceil_rate(static_cast<double>(target_hz));
  }

  // --- watchdog -----------------------------------------------------------
  if (in.vsync_count != last_vsync_count_) {
    last_vsync_count_ = in.vsync_count;
    last_vsync_progress_ = t;
  }
  // Low rungs legitimately need up to one (long) old period to move; give
  // the watchdog at least two periods of grace before calling it stuck.
  const sim::Duration grace = std::max(
      config_.watchdog_window,
      sim::Duration{
          2 * sim::period_of_hz(std::max(1, in.current_hz)).ticks});
  bool trip = false;
  if (t - last_vsync_progress_ > grace) trip = true;  // no vsync ack
  // Delivered-quality collapse: we keep asking for more than the panel
  // presents (a switch that never lands, or a stuck-at-low panel).
  const bool underserving = target_hz > in.current_hz;
  if (underserving && !underserved_) {
    underserved_ = true;
    underserved_since_ = t;
  } else if (!underserving) {
    underserved_ = false;
  }
  if (underserved_ && t - underserved_since_ > grace) {
    trip = true;
    underserved_since_ = t;  // re-arm: at most one trip per window
  }
  if (trip && !host_->safe_mode()) {
    if (ctr_watchdog_fallbacks_ != nullptr) ++*ctr_watchdog_fallbacks_;
    host_->abandon_pending(t);
    host_->note_fault(t);  // may escalate straight into safe mode
    host_->mark_fallback();
    target_hz = in.advertised->max_hz();
    CCDEM_OBS_SPAN(obs_, obs::Phase::kRecover, t, sim::Duration{},
                   host_->evaluations(), target_hz);
  }

  // --- pending-switch timeout (ladder open but unresolved) ----------------
  if (host_->pending_target() != 0 &&
      t - host_->pending_since() >= config_.switch_timeout) {
    if (ctr_retry_giveups_ != nullptr) ++*ctr_retry_giveups_;
    host_->abandon_pending(t);
    host_->note_fault(t);
    host_->mark_fallback();
    target_hz = in.advertised->max_hz();
  }
}

// --- DegradationLadderStage ------------------------------------------------

void DegradationLadderStage::register_obs(obs::ObsSink* obs) {
  obs_ = obs;
  ctr_sheds_ = &obs->counters.counter("degrade.sheds");
  ctr_recoveries_ = &obs->counters.counter("degrade.recoveries");
  ctr_safe_modes_ = &obs->counters.counter("degrade.safe_modes");
  ctr_caps_ = &obs->counters.counter("degrade.caps");
  gauge_rung_ = &obs->counters.gauge("degrade.rung");
  *gauge_rung_ = 0.0;
}

void DegradationLadderStage::set_rung(sim::Time now, int next,
                                      int /*severity*/) {
  if (next == rung_) return;
  const bool shed = next > rung_;
  if (power_ != nullptr) {
    if (next >= 3 && rung_ < 3) {
      base_brightness_ = power_->brightness();
      power_->set_brightness(now, base_brightness_ * config_.dim_factor);
    } else if (next < 3 && rung_ >= 3) {
      power_->set_brightness(now, base_brightness_);
    }
  }
  rung_ = next;
  last_change_ = now;
  ++changes_;
  if (obs_ != nullptr) {
    if (shed) {
      ++*ctr_sheds_;
      if (next == 4) ++*ctr_safe_modes_;
    } else {
      ++*ctr_recoveries_;
    }
    *gauge_rung_ = static_cast<double>(rung_);
  }
  CCDEM_OBS_SPAN(obs_, obs::Phase::kDegrade, now, sim::Duration{}, changes_,
                 rung_);
}

void DegradationLadderStage::update_rung(sim::Time now) {
  // preempt() and adjust() both land here; run the state machine once per
  // evaluation tick.
  if (now == last_update_) return;
  last_update_ = now;
  const bool pressured = source_ != nullptr && source_->under_pressure(now);
  if (pressured) {
    const int want = std::clamp(source_->severity(now), 1, 4);
    if (rung_ < want && now - last_change_ >= config_.step_hold) {
#if defined(CCDEM_CANARY_BUG)
      // Canary (CI mutation smoke): jump straight to the severity target,
      // skipping intermediate rungs -- invariant I7 must catch this.
      set_rung(now, want, want);
#else
      set_rung(now, rung_ + 1, want);
#endif
    }
    // Never step down while pressure is active (I7 monotonicity), even if
    // the severity estimate sags.
  } else if (rung_ > 0 && now - last_change_ >= config_.recovery_cooldown) {
    set_rung(now, rung_ - 1, 0);
  }
}

int DegradationLadderStage::cap_rate(const PolicyInput& in) const {
  if (config_.cap_hz > 0 && in.advertised->supports(config_.cap_hz)) {
    return config_.cap_hz;
  }
  // Default: the highest advertised rate strictly below the hardware max
  // (under thermal pressure the max is revoked anyway; under brownout this
  // is the one-step-down cap).
  int cap = in.advertised->min_hz();
  for (const int r : in.advertised->rates()) {
    if (r < in.rates->max_hz()) cap = r;
  }
  return cap;
}

std::optional<int> DegradationLadderStage::preempt(const PolicyInput& in) {
  update_rung(in.now);
  if (rung_ >= 4) {
    // Safe mode: content control is beside the point; hold the panel at
    // the cheapest rate the DDIC still advertises.
    return in.advertised->min_hz();
  }
  return std::nullopt;
}

void DegradationLadderStage::adjust(const PolicyInput& in, bool preempted,
                                    int& target_hz) {
  update_rung(in.now);
  if (preempted) return;  // a pinning plane (recovery, or rung 4) owns it
  if (rung_ >= 1 && in.boost_active) {
    // Rung 1: drop the boost -- the target never exceeds the policy's own
    // content-derived choice.
    const int policy = in.best_policy_hz(in.current_hz);
    if (target_hz > policy) {
      target_hz = policy;
      if (ctr_caps_ != nullptr) ++*ctr_caps_;
    }
  }
  if (rung_ >= 2) {
    const int cap = cap_rate(in);
    if (target_hz > cap) {
      target_hz = cap;
      if (ctr_caps_ != nullptr) ++*ctr_caps_;
    }
  }
}

}  // namespace ccdem::core
