// Device-side cost model for the content-rate comparison (Fig. 6).
//
// On the Galaxy S3 the paper measures the comparison duration per frame as a
// function of the number of sampled pixels: >40 ms at full resolution, ~9 ms
// at 36K, ~5 ms at 9K, and <1 ms below 9K (small grids stay cache-resident).
// This model reproduces that curve via log-log interpolation over the paper's
// calibration points so the simulation can (a) charge CPU energy for the
// metering and (b) reject configurations that cannot finish within a 60 Hz
// frame budget (16.67 ms), exactly as section 4.1 argues for full resolution.
//
// The raw cost on *this* host is measured separately by the
// bench_micro_gridcmp google-benchmark binary; the shape (monotonic in sample
// count, full resolution far above the 60 Hz budget of a phone-class core)
// is what matters, not the absolute milliseconds.
#pragma once

#include <cstdint>
#include <vector>

namespace ccdem::core {

class MeteringCostModel {
 public:
  /// Builds the default model calibrated to the paper's Fig. 6 points.
  MeteringCostModel();
  /// Custom calibration: (sample_count, duration_ms) points, ascending in
  /// sample count; at least two points.
  explicit MeteringCostModel(
      std::vector<std::pair<std::int64_t, double>> points);

  /// Comparison duration (ms) for a given sampled-pixel count.
  [[nodiscard]] double duration_ms(std::int64_t sample_count) const;

  /// Whether the comparison fits within one frame at `refresh_hz`.
  [[nodiscard]] bool fits_frame_budget(std::int64_t sample_count,
                                       int refresh_hz) const;

  /// CPU energy charged per comparison (mJ), assuming the phone-class core
  /// burns `cpu_active_mw` while comparing.
  [[nodiscard]] double energy_mj(std::int64_t sample_count,
                                 double cpu_active_mw = 250.0) const;

 private:
  std::vector<std::pair<std::int64_t, double>> points_;
};

}  // namespace ccdem::core
