#include "core/content_rate_meter.h"

#include <cassert>
#include <utility>

namespace ccdem::core {

ContentRateMeter::ContentRateMeter(gfx::Size screen, GridSpec grid,
                                   sim::Duration window, MeterMode mode,
                                   gfx::BufferPool* pool)
    : sampler_(screen, grid), window_(window), mode_(mode), pool_(pool) {
  assert(window.ticks > 0);
  if (mode_ == MeterMode::kFullFrame) {
    retained_ = gfx::Framebuffer(screen, pool_);
  } else if (pool_ != nullptr) {
    // Pre-size the retained snapshot and the unculled path's scratch from
    // the pool; the priming capture writes every element before any
    // comparison reads them.
    samples_ = pool_->acquire_reserved(sampler_.sample_count());
    scratch_ = pool_->acquire_reserved(sampler_.sample_count());
  }
}

ContentRateMeter::~ContentRateMeter() {
  if (pool_ != nullptr && mode_ != MeterMode::kFullFrame) {
    pool_->release(std::move(samples_));
    pool_->release(std::move(scratch_));
  }
}

const gfx::Framebuffer& ContentRateMeter::previous_frame() const {
  assert(mode_ == MeterMode::kFullFrame);
  return retained_;
}

void ContentRateMeter::set_obs(obs::ObsSink* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    ctr_frames_ = ctr_meaningful_ = ctr_pixels_compared_ =
        ctr_pixels_skipped_ = ctr_misclassified_ = nullptr;
    return;
  }
  ctr_frames_ = &obs_->counters.counter("meter.frames");
  ctr_meaningful_ = &obs_->counters.counter("meter.meaningful_frames");
  ctr_pixels_compared_ = &obs_->counters.counter("meter.pixels_compared");
  ctr_pixels_skipped_ =
      &obs_->counters.counter("meter.pixels_compare_skipped");
  ctr_misclassified_ = &obs_->counters.counter("meter.misclassified_frames");
}

bool ContentRateMeter::classify_sampled(const gfx::Framebuffer& fb,
                                        const gfx::Region& damage,
                                        bool primed) {
  last_compared_ = 0;
  last_skipped_ = 0;
  if (!primed) {
    // Priming capture: take the full grid so every retained point is valid;
    // the frame is meaningful by definition (first content shown).
    sampler_.sample(fb, samples_);
    return true;
  }
  if (!damage_culling_) {
    // Reference path (pre-culling behaviour, bit-identical): full fresh
    // capture, early-exit compare, then the capture becomes the retained
    // snapshot.
    sampler_.sample(fb, scratch_);
    assert(scratch_.size() == samples_.size());
    bool meaningful = false;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      ++last_compared_;
      if (scratch_[i] != samples_[i]) {
        meaningful = true;
        break;
      }
    }
    std::swap(samples_, scratch_);
    return meaningful;
  }
  // Damage-scoped pass: grid points outside the damage cannot have changed
  // (the compositor reconciled everything else from the previous frame), so
  // only covered points are read -- and refreshed in place, which keeps the
  // whole snapshot equal to a full capture.  An empty damage region
  // classifies the frame redundant without touching any pixel.
  bool meaningful = false;
  for (const gfx::Rect& r : damage.rects()) {
#if defined(CCDEM_CANARY_BUG)
    // Mutation-smoke canary (-DCCDEM_CANARY_BUG=ON, never a release build):
    // drop the damage rect's rightmost pixel column, so grid points under it
    // are neither compared nor refreshed in the retained snapshot.  The DST
    // harness must catch the divergence from the unculled reference.
    gfx::Rect cr = r;
    cr.width -= 1;
    const GridSampler::ScanResult res =
        sampler_.update_in_rect(fb, cr, samples_);
#else
    const GridSampler::ScanResult res =
        sampler_.update_in_rect(fb, r, samples_);
#endif
    last_compared_ += res.compared;
    meaningful |= res.differed;
  }
  last_skipped_ =
      static_cast<std::int64_t>(sampler_.sample_count()) - last_compared_;
  return meaningful;
}

bool ContentRateMeter::classify_full_frame(const gfx::Framebuffer& fb,
                                           const gfx::Region& damage,
                                           bool primed) {
  last_compared_ = 0;
  last_skipped_ = 0;
  if (!primed) {
    retained_.blit(fb, fb.bounds(), gfx::Point{0, 0});
    return true;
  }
  if (!damage_culling_) {
    // Reference path: compare every grid point (early exit), then retain a
    // full copy of the current frame.
    bool meaningful = false;
    for (const gfx::Point& p : sampler_.points()) {
      ++last_compared_;
      if (fb.at(p.x, p.y) != retained_.at(p.x, p.y)) {
        meaningful = true;
        break;
      }
    }
    retained_.blit(fb, fb.bounds(), gfx::Point{0, 0});
    return meaningful;
  }
  // Damage-scoped: compare covered grid points, then reconcile the retained
  // frame by copying only the damage -- the same trick the swapchain plays,
  // so retained_ stays byte-identical to the current frame.
  bool meaningful = false;
  for (const gfx::Rect& r : damage.rects()) {
    const GridSampler::ScanResult res =
        sampler_.compare_in_rect(fb, retained_, r);
    last_compared_ += res.compared;
    meaningful |= res.differed;
  }
  for (const gfx::Rect& r : damage.rects()) {
    retained_.blit(fb, r, gfx::Point{r.x, r.y});
  }
  last_skipped_ =
      static_cast<std::int64_t>(sampler_.sample_count()) - last_compared_;
  return meaningful;
}

void ContentRateMeter::on_frame(const gfx::FrameInfo& info,
                                const gfx::Framebuffer& fb) {
  // The compositor fills info.damage; hand-built frames (tests) may only
  // set the dirty bounding box, which is a valid over-approximation of the
  // damage.  Both empty means no pixel changed.
  gfx::Region dirty_fallback;
  const gfx::Region* damage = &info.damage;
  if (info.damage.empty() && !info.dirty.empty()) {
    dirty_fallback = gfx::Region(info.dirty);
    damage = &dirty_fallback;
  }

  const bool primed = have_prev_;
  if (sample_fault_ != nullptr && primed &&
      mode_ == MeterMode::kSampledSnapshot) {
    sample_fault_->corrupt_samples(info.composed_at, samples_);
  }
  bool meaningful = mode_ == MeterMode::kFullFrame
                        ? classify_full_frame(fb, *damage, primed)
                        : classify_sampled(fb, *damage, primed);
  // The very first composed frame necessarily shows new content.
  if (!primed) meaningful = true;
  have_prev_ = true;

  ++total_frames_;
  if (meaningful) ++meaningful_frames_;
  const bool misclassified =
      meaningful != info.content_changed && total_frames_ > 1;
  if (misclassified) ++misclassified_;
  total_compare_ms_ += compare_cost_per_frame_ms();

  if (obs_ != nullptr) {
    ++*ctr_frames_;
    if (meaningful) ++*ctr_meaningful_;
    if (misclassified) ++*ctr_misclassified_;
    *ctr_pixels_compared_ += static_cast<std::uint64_t>(last_compared_);
    *ctr_pixels_skipped_ += static_cast<std::uint64_t>(last_skipped_);
  }
  CCDEM_OBS_SPAN(
      obs_, obs::Phase::kMeter, info.composed_at,
      sim::seconds_f(compare_cost_per_frame_ms() / 1000.0), info.seq,
      last_compared_);

  window_obs_.push_back({info.composed_at, meaningful});
  ++window_frames_;
  if (meaningful) ++window_meaningful_;
  expire(info.composed_at);
}

void ContentRateMeter::expire(sim::Time now) const {
  const sim::Time cutoff = now - window_;
  while (!window_obs_.empty() && window_obs_.front().t <= cutoff) {
    --window_frames_;
    if (window_obs_.front().meaningful) --window_meaningful_;
    window_obs_.pop_front();
  }
}

double ContentRateMeter::content_rate(sim::Time now) const {
  expire(now);
  return static_cast<double>(window_meaningful_) / window_.seconds();
}

double ContentRateMeter::frame_rate(sim::Time now) const {
  expire(now);
  return static_cast<double>(window_frames_) / window_.seconds();
}

double ContentRateMeter::redundant_rate(sim::Time now) const {
  return frame_rate(now) - content_rate(now);
}

}  // namespace ccdem::core
