#include "core/content_rate_meter.h"

#include <cassert>

namespace ccdem::core {

ContentRateMeter::ContentRateMeter(gfx::Size screen, GridSpec grid,
                                   sim::Duration window, MeterMode mode,
                                   gfx::BufferPool* pool)
    : sampler_(screen, grid), window_(window), mode_(mode), pool_(pool) {
  assert(window.ticks > 0);
  if (mode_ == MeterMode::kFullFrame) {
    frames_ = gfx::DoubleBuffer<gfx::Framebuffer>(
        gfx::Framebuffer(screen, pool_), gfx::Framebuffer(screen, pool_));
  } else if (pool_ != nullptr) {
    // Pre-size the snapshot scratch from the pool; classify_sampled()'s
    // sample() overwrites every element before any comparison reads them.
    samples_ = gfx::DoubleBuffer<std::vector<gfx::Rgb888>>(
        pool_->acquire_reserved(sampler_.sample_count()),
        pool_->acquire_reserved(sampler_.sample_count()));
  }
}

ContentRateMeter::~ContentRateMeter() {
  if (pool_ != nullptr && mode_ != MeterMode::kFullFrame) {
    pool_->release(std::move(samples_.front()));
    pool_->release(std::move(samples_.back()));
  }
}

const gfx::Framebuffer& ContentRateMeter::previous_frame() const {
  assert(mode_ == MeterMode::kFullFrame);
  return frames_.back();
}

void ContentRateMeter::set_obs(obs::ObsSink* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    ctr_frames_ = ctr_meaningful_ = ctr_pixels_compared_ = ctr_misclassified_ =
        nullptr;
    return;
  }
  ctr_frames_ = &obs_->counters.counter("meter.frames");
  ctr_meaningful_ = &obs_->counters.counter("meter.meaningful_frames");
  ctr_pixels_compared_ = &obs_->counters.counter("meter.pixels_compared");
  ctr_misclassified_ = &obs_->counters.counter("meter.misclassified_frames");
}

bool ContentRateMeter::classify_sampled(const gfx::Framebuffer& fb) {
  // Capture the current frame's samples into the front buffer, classify
  // against the back buffer (previous frame), then swap -- the double
  // buffering of section 3.1: capture and comparison alternate between the
  // two buffers so no copy of the previous frame is ever made.
  sampler_.sample(fb, samples_.front());
  bool meaningful = false;
  last_compared_ = 0;
  const auto& prev = samples_.back();
  const auto& cur = samples_.front();
  if (prev.size() == cur.size()) {
    for (std::size_t i = 0; i < cur.size(); ++i) {
      ++last_compared_;
      if (cur[i] != prev[i]) {
        meaningful = true;
        break;
      }
    }
  } else {
    meaningful = true;  // priming capture: no previous snapshot yet
  }
  samples_.swap();
  return meaningful;
}

bool ContentRateMeter::classify_full_frame(const gfx::Framebuffer& fb) {
  // Compare the current framebuffer's grid points against the retained
  // previous frame, then store a copy of the current frame into the spare
  // buffer and swap roles.
  const gfx::Framebuffer& prev = frames_.back();
  bool meaningful = false;
  last_compared_ = 0;
  for (const gfx::Point& p : sampler_.points()) {
    ++last_compared_;
    if (fb.at(p.x, p.y) != prev.at(p.x, p.y)) {
      meaningful = true;
      break;
    }
  }
  frames_.front().blit(fb, fb.bounds(), gfx::Point{0, 0});
  frames_.swap();
  return meaningful;
}

void ContentRateMeter::on_frame(const gfx::FrameInfo& info,
                                const gfx::Framebuffer& fb) {
  bool meaningful;
  if (have_prev_) {
    meaningful = mode_ == MeterMode::kFullFrame ? classify_full_frame(fb)
                                                : classify_sampled(fb);
  } else {
    // The very first composed frame necessarily shows new content.  Still
    // run the capture path so the retained state is primed.
    if (mode_ == MeterMode::kFullFrame) {
      (void)classify_full_frame(fb);
    } else {
      (void)classify_sampled(fb);
    }
    meaningful = true;
  }
  have_prev_ = true;

  ++total_frames_;
  if (meaningful) ++meaningful_frames_;
  const bool misclassified =
      meaningful != info.content_changed && total_frames_ > 1;
  if (misclassified) ++misclassified_;
  total_compare_ms_ += compare_cost_per_frame_ms();

  if (obs_ != nullptr) {
    ++*ctr_frames_;
    if (meaningful) ++*ctr_meaningful_;
    if (misclassified) ++*ctr_misclassified_;
    *ctr_pixels_compared_ += static_cast<std::uint64_t>(last_compared_);
  }
  CCDEM_OBS_SPAN(
      obs_, obs::Phase::kMeter, info.composed_at,
      sim::seconds_f(compare_cost_per_frame_ms() / 1000.0), info.seq,
      last_compared_);

  window_obs_.push_back({info.composed_at, meaningful});
  expire(info.composed_at);
}

void ContentRateMeter::expire(sim::Time now) {
  const sim::Time cutoff = now - window_;
  while (!window_obs_.empty() && window_obs_.front().t <= cutoff) {
    window_obs_.pop_front();
  }
}

double ContentRateMeter::content_rate(sim::Time now) const {
  const sim::Time cutoff = now - window_;
  std::uint64_t n = 0;
  for (auto it = window_obs_.rbegin(); it != window_obs_.rend(); ++it) {
    if (it->t <= cutoff) break;
    if (it->meaningful) ++n;
  }
  return static_cast<double>(n) / window_.seconds();
}

double ContentRateMeter::frame_rate(sim::Time now) const {
  const sim::Time cutoff = now - window_;
  std::uint64_t n = 0;
  for (auto it = window_obs_.rbegin(); it != window_obs_.rend(); ++it) {
    if (it->t <= cutoff) break;
    ++n;
  }
  return static_cast<double>(n) / window_.seconds();
}

double ContentRateMeter::redundant_rate(sim::Time now) const {
  return frame_rate(now) - content_rate(now);
}

}  // namespace ccdem::core
