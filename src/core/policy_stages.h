// The stock policy stages, ported from the monolithic controller classes
// (SectionPolicy / NaivePolicy / HysteresisPolicy / the DPM's inline boost,
// floor and recovery planes) plus the two stages the pipeline seam was
// built to host: the predictive content-rate governor and the GPU-DVFS
// co-control cap.
//
// Port contract: replaying a legacy ControlMode through its canonical
// pipeline spec is byte-identical to the pre-refactor controller (traces,
// counters, spans -- modulo the new policy.* counters and arbiter spans).
// Every behavioural subtlety preserved here is called out inline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "core/policy_pipeline.h"
#include "core/section_table.h"
#include "core/self_refresh_controller.h"
#include "display/refresh_rate.h"
#include "gfx/surface_flinger.h"
#include "power/device_power_model.h"

namespace ccdem::core {

/// Boost target resolution shared by the boost stage and the controller's
/// immediate on-touch actuation: the configured cap when the DDIC still
/// advertises it, else the advertised maximum.
[[nodiscard]] int resolve_boost_hz(const display::RefreshRateSet& advertised,
                                   int boost_hz);

/// The paper's section table (Equation (1)): rate source.
class SectionStage final : public PolicyStage {
 public:
  explicit SectionStage(SectionTable table) : table_(std::move(table)) {}
  [[nodiscard]] std::string_view name() const override { return "section"; }
  std::optional<RateProposal> propose(const PolicyInput& in) override;
  [[nodiscard]] const SectionTable& table() const { return table_; }

 private:
  SectionTable table_;
};

/// The paper's failed direct mapping (ablation): smallest supported rate
/// >= the measured content rate.  Blind to content the current (low)
/// refresh rate hides, so it ratchets down and sticks.
class NaiveStage final : public PolicyStage {
 public:
  explicit NaiveStage(display::RefreshRateSet rates)
      : rates_(std::move(rates)) {}
  [[nodiscard]] std::string_view name() const override { return "naive"; }
  std::optional<RateProposal> propose(const PolicyInput& in) override;

 private:
  display::RefreshRateSet rates_;
};

/// Asymmetric hysteresis over the upstream rate sources: increases pass
/// through untouched (no proposal -- the source's own proposal already
/// wins), a decrease is let through only after `down_confirmations`
/// consecutive down-decisions; until then this stage proposes the current
/// rate, which out-arbitrates the lower source proposal (exactly the
/// legacy wrapper's "return current_hz").
class HysteresisStage final : public PolicyStage {
 public:
  explicit HysteresisStage(int down_confirmations)
      : down_confirmations_(down_confirmations) {}
  [[nodiscard]] std::string_view name() const override { return "hysteresis"; }
  std::optional<RateProposal> propose(const PolicyInput& in) override;
  [[nodiscard]] int down_confirmations() const { return down_confirmations_; }
  [[nodiscard]] int pending_down() const { return pending_down_; }

 private:
  int down_confirmations_;
  int pending_down_ = 0;
};

/// Touch boost: while the booster's hold window is open (in.boost_active),
/// proposes the boost target.  Non-policy class -- the section-transition
/// counter keeps tracking the underlying policy decision through boosts.
class BoostStage final : public PolicyStage {
 public:
  explicit BoostStage(int boost_hz) : boost_hz_(boost_hz) {}
  [[nodiscard]] std::string_view name() const override { return "boost"; }
  std::optional<RateProposal> propose(const PolicyInput& in) override;

 private:
  int boost_hz_;
};

/// Safety floor: proposes min_hz whenever the hardware ladder supports it
/// (max-rate arbitration turns the unconditional proposal into the legacy
/// "target = max(target, min_hz)" clamp).
class FloorStage final : public PolicyStage {
 public:
  explicit FloorStage(int min_hz) : min_hz_(min_hz) {}
  [[nodiscard]] std::string_view name() const override { return "floor"; }
  std::optional<RateProposal> propose(const PolicyInput& in) override;

 private:
  int min_hz_;
};

/// Predictive content-rate governor (PAPERS.md: Anglada et al.; SNIPPETS.md
/// snippet 1: DynClockVita's asymmetric cooldowns).  Ups are instant, like
/// the reactive table; on a *stable* downtrend the stage extrapolates the
/// content rate `lead` ticks ahead and steps down to the predicted section
/// early -- after `down_confirmations` consecutive confirmations and at
/// most one down-step per cooldown.  The proposed rate is never above the
/// reactive table's own choice, so the stage can only save energy relative
/// to the reactive stack on identical traces.
class PredictiveRateStage final : public PolicyStage {
 public:
  PredictiveRateStage(SectionTable table, PredictiveConfig config);
  [[nodiscard]] std::string_view name() const override { return "predictive"; }
  std::optional<RateProposal> propose(const PolicyInput& in) override;
  void register_obs(obs::ObsSink* obs) override;
  [[nodiscard]] int target_hz() const { return target_hz_; }

 private:
  SectionTable table_;
  PredictiveConfig config_;
  std::vector<double> window_;  // ring of recent content-rate samples
  std::size_t window_head_ = 0;
  std::size_t window_count_ = 0;
  int target_hz_ = 0;  // 0 until the first sample
  int down_streak_ = 0;
  sim::Time last_down_{sim::Time{} - sim::seconds(3600)};
  std::uint64_t* ctr_presteps_ = nullptr;
};

/// GPU-DVFS co-control: models a GPU clock ladder whose rung r delivers
/// max_hz * (r+1)/rungs fps of render capacity.  Content-rate instability
/// up-rungs immediately; a sustained stable streak with headroom down-rungs.
/// The display target is capped at the rung's capacity (no point scanning
/// out faster than the GPU renders) -- except while boosted or preempted,
/// where quality/recovery semantics own the rate.
class DvfsCoControlStage final : public PolicyStage {
 public:
  explicit DvfsCoControlStage(DvfsConfig config, int min_hz)
      : config_(config), min_hz_(min_hz), rung_(config.rungs - 1) {}
  [[nodiscard]] std::string_view name() const override { return "dvfs"; }
  void adjust(const PolicyInput& in, bool preempted, int& target_hz) override;
  void register_obs(obs::ObsSink* obs) override;
  [[nodiscard]] int rung() const { return rung_; }

 private:
  [[nodiscard]] double capacity_fps(int rung, const PolicyInput& in) const;

  DvfsConfig config_;
  int min_hz_;
  int rung_;
  int stable_streak_ = 0;
  double last_fps_ = 0.0;
  bool has_last_ = false;
  std::uint64_t* ctr_caps_ = nullptr;
  double* gauge_rung_ = nullptr;
};

/// Panel self-refresh as a stage: owns a SelfRefreshController, constructed
/// in start() so its frame listener and evaluation series register in the
/// same canonical order the device assembly used (after the controller's
/// own registrations).  Proposes nothing -- PSR acts on composition gaps,
/// not on the rate.
class SelfRefreshStage final : public PolicyStage {
 public:
  SelfRefreshStage(gfx::SurfaceFlinger& flinger, power::DevicePowerModel& power,
                   SelfRefreshConfig config)
      : flinger_(flinger), power_(power), config_(config) {}
  [[nodiscard]] std::string_view name() const override {
    return "self_refresh";
  }
  void start(sim::Simulator& sim) override;
  void stop() override;
  [[nodiscard]] SelfRefreshController* controller() { return ctrl_.get(); }

 private:
  gfx::SurfaceFlinger& flinger_;
  power::DevicePowerModel& power_;
  SelfRefreshConfig config_;
  std::unique_ptr<SelfRefreshController> ctrl_;
};

/// The recovery plane's evaluation side (DESIGN.md section 9), ported from
/// the monolithic controller: safe-mode rearm + pin (preempt), and the
/// advertised-rate revalidation, vsync/underserve watchdog and
/// pending-switch timeout (adjust).  The retry ladder itself stays with the
/// actuation plane, reached through RecoveryHost.
class RecoveryStage final : public PolicyStage {
 public:
  explicit RecoveryStage(RecoveryConfig config) : config_(config) {}
  [[nodiscard]] std::string_view name() const override { return "recovery"; }
  std::optional<int> preempt(const PolicyInput& in) override;
  void adjust(const PolicyInput& in, bool preempted, int& target_hz) override;
  void register_obs(obs::ObsSink* obs) override;
  void set_recovery_host(RecoveryHost* host) override { host_ = host; }

 private:
  RecoveryConfig config_;
  RecoveryHost* host_ = nullptr;

  // Watchdog state (was the DPM's).
  bool underserved_ = false;
  sim::Time underserved_since_{};
  std::uint64_t last_vsync_count_ = 0;
  sim::Time last_vsync_progress_{};

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_watchdog_fallbacks_ = nullptr;
  std::uint64_t* ctr_retry_giveups_ = nullptr;
};

/// The system-pressure safety plane (DESIGN.md section 14): a fixed-order
/// graceful-degradation ladder over the modeled environmental pressure
/// (thermal throttle, battery brownout, vsync jitter storms).
///
///   rung 0  normal operation
///   rung 1  drop boost: the target never exceeds the policy's own choice
///   rung 2  cap the max rate (config cap, or one ladder step below max)
///   rung 3  additionally dim the panel (brightness * dim_factor)
///   rung 4  safe mode: pin the minimum advertised rate
///
/// Invariant contract (check/invariants.h, I7/I8): rungs shed one at a time
/// toward the pressure severity -- never skipping -- each after `step_hold`
/// on the previous rung, and never step down while pressure is active.
/// After pressure clears, one rung is regained per `recovery_cooldown`.
/// Every rung change stamps a kDegrade span (frame = change index, arg =
/// the new rung).
class DegradationLadderStage final : public PolicyStage {
 public:
  explicit DegradationLadderStage(LadderConfig config) : config_(config) {}
  [[nodiscard]] std::string_view name() const override { return "degrade"; }
  std::optional<int> preempt(const PolicyInput& in) override;
  void adjust(const PolicyInput& in, bool preempted, int& target_hz) override;
  void register_obs(obs::ObsSink* obs) override;

  /// Late wiring (device assembly): the pressure source the ladder listens
  /// to and the power model whose brightness the dim rung actuates.  Either
  /// may be null (the ladder then idles at rung 0 / skips dimming).
  void bind_pressure(PressureSource* source, power::DevicePowerModel* power) {
    source_ = source;
    power_ = power;
  }

  [[nodiscard]] int rung() const { return rung_; }

 private:
  void update_rung(sim::Time now);
  void set_rung(sim::Time now, int rung, int severity);
  [[nodiscard]] int cap_rate(const PolicyInput& in) const;

  LadderConfig config_;
  PressureSource* source_ = nullptr;
  power::DevicePowerModel* power_ = nullptr;

  int rung_ = 0;
  /// Sentinel "long ago" so the first shed on pressure onset is immediate.
  sim::Time last_change_{sim::Time{} - sim::seconds(3600)};
  sim::Time last_update_{sim::Time{} - sim::seconds(3600)};
  double base_brightness_ = 0.0;  // captured when the dim rung engages
  std::uint64_t changes_ = 0;

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_sheds_ = nullptr;
  std::uint64_t* ctr_recoveries_ = nullptr;
  std::uint64_t* ctr_safe_modes_ = nullptr;
  std::uint64_t* ctr_caps_ = nullptr;
  double* gauge_rung_ = nullptr;
};

}  // namespace ccdem::core
