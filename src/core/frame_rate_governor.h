// FrameRateGovernor: an E3-style comparison baseline (Han et al., SenSys'13,
// the paper's reference [16]).
//
// Instead of lowering the panel's refresh rate, this family of schemes
// throttles the *application's* frame rate to what the content needs, while
// the display keeps refreshing at 60 Hz.  It saves the render/composition
// energy of redundant frames but none of the refresh-proportional panel
// power -- the component the paper's controller additionally harvests.
// bench_baseline_e3 quantifies that gap.
//
// The governor reuses the same content-rate meter as the proposed system
// and releases the cap while the user interacts (the E3 paper's
// scroll-responsiveness, mapped onto our touch events).
#pragma once

#include <functional>

#include "core/content_rate_meter.h"
#include "core/control_config.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "input/touch_event.h"
#include "obs/obs.h"
#include "power/device_power_model.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ccdem::core {

struct GovernorConfig {
  /// Shared meter description (grid / window / cadence / culling) --
  /// identical in shape to the proposed controller's DpmConfig::meter, so
  /// A/B arms meter the same way by construction.
  MeterConfig meter{};
  /// Cap = content rate x headroom (the content rate must be able to
  /// grow so the governor can observe demand increases).
  double headroom = 1.5;
  double min_cap_fps = 10.0;
  /// Cap released for this long after the last touch event.
  sim::Duration interact_hold = sim::milliseconds(500);
  bool charge_meter_cost = true;
  double meter_cpu_mw = 100.0;
};

class FrameRateGovernor final : public gfx::FrameListener,
                                public input::TouchListener {
 public:
  using Config = GovernorConfig;

  /// `set_cap(fps)` throttles the governed app; 0 lifts the cap.
  /// `power` may be null.  `pool` (optional) recycles the meter's buffers.
  /// `obs` (optional) receives governor.* counters and a govern span per
  /// evaluation tick.  `panel` (optional) lets the governor revalidate its
  /// cap against the panel's currently-advertised rates (fault layer: a
  /// capability loss must not leave the app rendering frames the link
  /// cannot present).
  FrameRateGovernor(sim::Simulator& sim, gfx::SurfaceFlinger& flinger,
                    std::function<void(double)> set_cap,
                    power::DevicePowerModel* power, Config config = {},
                    gfx::BufferPool* pool = nullptr,
                    obs::ObsSink* obs = nullptr,
                    const display::DisplayPanel* panel = nullptr);

  FrameRateGovernor(const FrameRateGovernor&) = delete;
  FrameRateGovernor& operator=(const FrameRateGovernor&) = delete;

  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer& fb) override;
  void on_touch(const input::TouchEvent& e) override;

  void stop() { running_ = false; }

  /// Routes the fault layer's sample corruption into the meter (null
  /// detaches).
  void set_sample_fault(SampleFault* fault) { meter_.set_sample_fault(fault); }

  [[nodiscard]] const ContentRateMeter& meter() const { return meter_; }
  /// Applied cap over time (0 = uncapped); step signal.
  [[nodiscard]] const sim::Trace& cap_trace() const { return cap_trace_; }

 private:
  void evaluate(sim::Time t);

  std::function<void(double)> set_cap_;
  power::DevicePowerModel* power_;
  const display::DisplayPanel* panel_ = nullptr;
  Config config_;
  ContentRateMeter meter_;
  sim::Time last_touch_{sim::Time{} - sim::seconds(3600)};
  double current_cap_ = 0.0;
  sim::Trace cap_trace_{"request_cap_fps"};
  bool running_ = true;
  std::uint64_t evaluations_ = 0;

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_evaluations_ = nullptr;
  std::uint64_t* ctr_cap_changes_ = nullptr;
};

}  // namespace ccdem::core
