// Refresh-rate decision policies.
//
// The policy sees the measured content rate and returns a target refresh
// rate.  Three implementations cover the paper's design space:
//  * SectionPolicy -- the contribution (section table of Equation (1)),
//  * NaivePolicy   -- the paper's failed first attempt ("adjust the refresh
//    rate to the current content rate"), kept as an ablation: under V-Sync
//    the measured content rate can never exceed the refresh rate, so this
//    policy ratchets down and sticks at a low rate,
//  * FixedPolicy   -- stock Android behaviour (the 60 Hz baseline).
#pragma once

#include <memory>

#include "core/section_table.h"
#include "display/refresh_rate.h"
#include "sim/time.h"

namespace ccdem::core {

class RefreshPolicy {
 public:
  virtual ~RefreshPolicy() = default;
  /// Decides the target refresh rate given the content rate measured over
  /// the meter window ending at `now`.
  [[nodiscard]] virtual int decide(sim::Time now, double content_fps,
                                   int current_hz) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

class SectionPolicy final : public RefreshPolicy {
 public:
  SectionPolicy(const display::RefreshRateSet& rates, double alpha = 0.5)
      : table_(SectionTable::build(rates, alpha)) {}
  explicit SectionPolicy(SectionTable table) : table_(std::move(table)) {}

  [[nodiscard]] int decide(sim::Time, double content_fps, int) override {
    return table_.rate_for(content_fps);
  }
  [[nodiscard]] const char* name() const override { return "section"; }
  [[nodiscard]] const SectionTable& table() const { return table_; }

 private:
  SectionTable table_;
};

class NaivePolicy final : public RefreshPolicy {
 public:
  explicit NaivePolicy(display::RefreshRateSet rates)
      : rates_(std::move(rates)) {}

  [[nodiscard]] int decide(sim::Time, double content_fps, int) override {
    // Smallest supported rate >= the measured content rate: looks correct
    // but is blind to content the current (low) refresh rate hides.
    return rates_.ceil_rate(content_fps);
  }
  [[nodiscard]] const char* name() const override { return "naive"; }

 private:
  display::RefreshRateSet rates_;
};

class FixedPolicy final : public RefreshPolicy {
 public:
  explicit FixedPolicy(int hz) : hz_(hz) {}

  [[nodiscard]] int decide(sim::Time, double, int) override { return hz_; }
  [[nodiscard]] const char* name() const override { return "fixed"; }

 private:
  int hz_;
};

}  // namespace ccdem::core
