#include "core/grid_sampler.h"

#include <algorithm>
#include <cassert>

#include "gfx/compare.h"

namespace ccdem::core {

std::string GridSpec::label() const {
  const std::int64_t n = sample_count();
  if (n >= 1000) {
    return std::to_string(n / 1000) + "K (" + std::to_string(cols) + "x" +
           std::to_string(rows) + ")";
  }
  return std::to_string(n) + " (" + std::to_string(cols) + "x" +
         std::to_string(rows) + ")";
}

std::vector<GridSpec> GridSpec::figure6_sweep() {
  return {grid_2k(), grid_4k(), grid_9k(), grid_36k(), full_720p()};
}

GridSampler::GridSampler(gfx::Size screen, GridSpec grid)
    : screen_(screen), grid_(grid) {
  assert(!screen.empty());
  assert(grid.cols > 0 && grid.rows > 0);
  assert(grid.cols <= screen.width && grid.rows <= screen.height);
  points_.reserve(static_cast<std::size_t>(grid.cols) * grid.rows);
  flat_index_.reserve(points_.capacity());
  // Centre pixel of each grid cell.  Cell (i, j) spans
  // [i*W/cols, (i+1)*W/cols) x [j*H/rows, (j+1)*H/rows); we take the middle.
  // The per-axis centres are strictly increasing in the cell index, which is
  // what lets index_range() binary-search them.
  center_xs_.reserve(static_cast<std::size_t>(grid.cols));
  center_ys_.reserve(static_cast<std::size_t>(grid.rows));
  for (int i = 0; i < grid.cols; ++i) {
    const int x0 = static_cast<int>(
        static_cast<std::int64_t>(i) * screen.width / grid.cols);
    const int x1 = static_cast<int>(
        static_cast<std::int64_t>(i + 1) * screen.width / grid.cols);
    center_xs_.push_back((x0 + x1) / 2);
  }
  for (int j = 0; j < grid.rows; ++j) {
    const int y0 = static_cast<int>(
        static_cast<std::int64_t>(j) * screen.height / grid.rows);
    const int y1 = static_cast<int>(
        static_cast<std::int64_t>(j + 1) * screen.height / grid.rows);
    center_ys_.push_back((y0 + y1) / 2);
  }
  for (const int y : center_ys_) {
    for (const int x : center_xs_) {
      points_.push_back({x, y});
      flat_index_.push_back(static_cast<std::size_t>(y) * screen.width + x);
    }
  }
}

void GridSampler::sample(const gfx::Framebuffer& fb,
                         std::vector<gfx::Rgb888>& out) const {
  assert(fb.size() == screen_);
  out.resize(flat_index_.size());
  gfx::kernels::gather(fb.pixels(), flat_index_, out.data());
}

GridSampler::IndexRange GridSampler::index_range(gfx::Rect r) const {
  const gfx::Rect c = r.intersect(gfx::Rect::of(screen_));
  if (c.empty()) return {};
  IndexRange range;
  // Half-open on both axes, matching the rect: centres in [x, right).
  range.col_begin = static_cast<int>(
      std::lower_bound(center_xs_.begin(), center_xs_.end(), c.x) -
      center_xs_.begin());
  range.col_end = static_cast<int>(
      std::lower_bound(center_xs_.begin(), center_xs_.end(), c.right()) -
      center_xs_.begin());
  range.row_begin = static_cast<int>(
      std::lower_bound(center_ys_.begin(), center_ys_.end(), c.y) -
      center_ys_.begin());
  range.row_end = static_cast<int>(
      std::lower_bound(center_ys_.begin(), center_ys_.end(), c.bottom()) -
      center_ys_.begin());
  return range;
}

GridSampler::ScanResult GridSampler::update_in_rect(
    const gfx::Framebuffer& fb, gfx::Rect r,
    std::vector<gfx::Rgb888>& retained) const {
  assert(fb.size() == screen_);
  assert(retained.size() == flat_index_.size());
  const IndexRange range = index_range(r);
  ScanResult result;
  if (range.empty()) return result;
  const auto px = fb.pixels();
  // No early exit: every covered point must refresh the retained snapshot,
  // so the differ check rides along for free.
  for (int j = range.row_begin; j < range.row_end; ++j) {
    const std::size_t row_base =
        static_cast<std::size_t>(j) * grid_.cols;
    for (int i = range.col_begin; i < range.col_end; ++i) {
      const std::size_t k = row_base + i;
      const gfx::Rgb888 fresh = px[flat_index_[k]];
      result.differed |= fresh != retained[k];
      retained[k] = fresh;
    }
  }
  result.compared = range.count();
  return result;
}

GridSampler::ScanResult GridSampler::compare_in_rect(
    const gfx::Framebuffer& fb, const gfx::Framebuffer& prev,
    gfx::Rect r) const {
  assert(fb.size() == screen_);
  assert(prev.size() == screen_);
  const IndexRange range = index_range(r);
  ScanResult result;
  if (range.empty()) return result;
  const auto cur_px = fb.pixels();
  const auto prev_px = prev.pixels();
  for (int j = range.row_begin; j < range.row_end; ++j) {
    const std::size_t row_base =
        static_cast<std::size_t>(j) * grid_.cols;
    for (int i = range.col_begin; i < range.col_end; ++i) {
      const std::size_t k = flat_index_[row_base + i];
      result.differed |= cur_px[k] != prev_px[k];
    }
  }
  result.compared = range.count();
  return result;
}

bool GridSampler::differs(const gfx::Framebuffer& fb,
                          const std::vector<gfx::Rgb888>& prev) const {
  assert(fb.size() == screen_);
  assert(prev.size() == flat_index_.size());
  const auto px = fb.pixels();
  for (std::size_t k = 0; k < flat_index_.size(); ++k) {
    if (px[flat_index_[k]] != prev[k]) return true;
  }
  return false;
}

}  // namespace ccdem::core
