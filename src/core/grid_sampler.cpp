#include "core/grid_sampler.h"

#include <cassert>

namespace ccdem::core {

std::string GridSpec::label() const {
  const std::int64_t n = sample_count();
  if (n >= 1000) {
    return std::to_string(n / 1000) + "K (" + std::to_string(cols) + "x" +
           std::to_string(rows) + ")";
  }
  return std::to_string(n) + " (" + std::to_string(cols) + "x" +
         std::to_string(rows) + ")";
}

std::vector<GridSpec> GridSpec::figure6_sweep() {
  return {grid_2k(), grid_4k(), grid_9k(), grid_36k(), full_720p()};
}

GridSampler::GridSampler(gfx::Size screen, GridSpec grid)
    : screen_(screen), grid_(grid) {
  assert(!screen.empty());
  assert(grid.cols > 0 && grid.rows > 0);
  assert(grid.cols <= screen.width && grid.rows <= screen.height);
  points_.reserve(static_cast<std::size_t>(grid.cols) * grid.rows);
  flat_index_.reserve(points_.capacity());
  // Centre pixel of each grid cell.  Cell (i, j) spans
  // [i*W/cols, (i+1)*W/cols) x [j*H/rows, (j+1)*H/rows); we take the middle.
  for (int j = 0; j < grid.rows; ++j) {
    const int y0 = static_cast<int>(
        static_cast<std::int64_t>(j) * screen.height / grid.rows);
    const int y1 = static_cast<int>(
        static_cast<std::int64_t>(j + 1) * screen.height / grid.rows);
    const int y = (y0 + y1) / 2;
    for (int i = 0; i < grid.cols; ++i) {
      const int x0 = static_cast<int>(
          static_cast<std::int64_t>(i) * screen.width / grid.cols);
      const int x1 = static_cast<int>(
          static_cast<std::int64_t>(i + 1) * screen.width / grid.cols);
      const int x = (x0 + x1) / 2;
      points_.push_back({x, y});
      flat_index_.push_back(static_cast<std::size_t>(y) * screen.width + x);
    }
  }
}

void GridSampler::sample(const gfx::Framebuffer& fb,
                         std::vector<gfx::Rgb888>& out) const {
  assert(fb.size() == screen_);
  out.resize(flat_index_.size());
  const auto px = fb.pixels();
  for (std::size_t k = 0; k < flat_index_.size(); ++k) {
    out[k] = px[flat_index_[k]];
  }
}

bool GridSampler::differs(const gfx::Framebuffer& fb,
                          const std::vector<gfx::Rgb888>& prev) const {
  assert(fb.size() == screen_);
  assert(prev.size() == flat_index_.size());
  const auto px = fb.pixels();
  for (std::size_t k = 0; k < flat_index_.size(); ++k) {
    if (px[flat_index_[k]] != prev[k]) return true;
  }
  return false;
}

}  // namespace ccdem::core
