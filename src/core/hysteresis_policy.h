// HysteresisPolicy: an extension over the paper's section-based control.
//
// The section table is memoryless: a content rate hovering around a
// threshold (e.g. an app oscillating near 10 fps on the Galaxy S3 table)
// makes the panel flip between rates every evaluation, and every rate
// switch costs a panel-timing reprogram and a visible cadence change.  This
// wrapper applies classic asymmetric hysteresis: increases pass through
// immediately (quality first -- the same reasoning as touch boosting), but a
// decrease is applied only after the inner policy has asked for a rate at or
// below it for `down_confirmations` consecutive decisions.
//
// The paper does not evaluate this; bench_ablation_hysteresis quantifies the
// switch-count reduction and the (small) power give-back.
#pragma once

#include <memory>

#include "core/refresh_policy.h"

namespace ccdem::core {

class HysteresisPolicy final : public RefreshPolicy {
 public:
  HysteresisPolicy(std::unique_ptr<RefreshPolicy> inner,
                   int down_confirmations = 3)
      : inner_(std::move(inner)),
        down_confirmations_(down_confirmations) {}

  [[nodiscard]] int decide(sim::Time now, double content_fps,
                           int current_hz) override {
    const int want = inner_->decide(now, content_fps, current_hz);
    if (want >= current_hz) {
      pending_down_ = 0;
      return want;  // increases (and holds) apply immediately
    }
    if (++pending_down_ >= down_confirmations_) {
      pending_down_ = 0;
      return want;
    }
    return current_hz;  // not yet confirmed; hold the current rate
  }

  [[nodiscard]] const char* name() const override { return "hysteresis"; }
  [[nodiscard]] const RefreshPolicy& inner() const { return *inner_; }
  [[nodiscard]] int down_confirmations() const { return down_confirmations_; }

 private:
  std::unique_ptr<RefreshPolicy> inner_;
  int down_confirmations_;
  int pending_down_ = 0;
};

}  // namespace ccdem::core
