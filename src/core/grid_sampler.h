// Grid-based framebuffer sampling (paper section 3.1).
//
// Comparing full 720x1280 framebuffers every frame is too slow for the 60 Hz
// budget (Fig. 6: > 40 ms on the device), so the meter samples a sparse grid
// where "the RGB data of the grid are regarded as the center pixel of each
// grid".  A GridSampler precomputes the centre-pixel offsets for a given
// screen/grid geometry and extracts those samples from a framebuffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gfx/framebuffer.h"
#include "gfx/geometry.h"
#include "gfx/pixel.h"

namespace ccdem::core {

/// A named grid geometry.  The paper's sweep on the 720x1280 panel:
/// 2K (36x64), 4K (48x85), 9K (72x128), 36K (144x256), 921K (720x1280).
struct GridSpec {
  int cols = 72;
  int rows = 128;

  [[nodiscard]] std::int64_t sample_count() const {
    return static_cast<std::int64_t>(cols) * rows;
  }
  [[nodiscard]] std::string label() const;

  static GridSpec grid_2k() { return {36, 64}; }
  static GridSpec grid_4k() { return {48, 85}; }
  static GridSpec grid_9k() { return {72, 128}; }
  static GridSpec grid_36k() { return {144, 256}; }
  static GridSpec full_720p() { return {720, 1280}; }

  /// The five configurations of Fig. 6, coarsest first.
  static std::vector<GridSpec> figure6_sweep();
};

class GridSampler {
 public:
  GridSampler(gfx::Size screen, GridSpec grid);

  [[nodiscard]] gfx::Size screen() const { return screen_; }
  [[nodiscard]] GridSpec grid() const { return grid_; }
  [[nodiscard]] std::size_t sample_count() const { return points_.size(); }
  [[nodiscard]] const std::vector<gfx::Point>& points() const {
    return points_;
  }

  /// Extracts the grid samples from `fb` into `out` (resized as needed).
  /// `fb` must match the screen size the sampler was built for.
  void sample(const gfx::Framebuffer& fb, std::vector<gfx::Rgb888>& out) const;

  /// Compares `fb`'s current grid samples against `prev` without extracting.
  /// Returns true on the first differing sample (early exit -- the common
  /// fast path for meaningful frames).  `prev.size()` must equal
  /// sample_count().
  [[nodiscard]] bool differs(const gfx::Framebuffer& fb,
                             const std::vector<gfx::Rgb888>& prev) const;

  /// The half-open ranges of grid columns and rows whose cell-centre pixel
  /// lies inside `r`.  Cell centres are monotonic in the cell index, so a
  /// screen rect maps to a contiguous index block; grid point (i, j) has
  /// sample index j * cols + i.  Empty ranges mean no centre is covered --
  /// a change confined to `r` is invisible to the grid.
  struct IndexRange {
    int col_begin = 0;
    int col_end = 0;  // exclusive
    int row_begin = 0;
    int row_end = 0;  // exclusive

    [[nodiscard]] bool empty() const {
      return col_begin >= col_end || row_begin >= row_end;
    }
    [[nodiscard]] std::int64_t count() const {
      return empty() ? 0
                     : static_cast<std::int64_t>(col_end - col_begin) *
                           (row_end - row_begin);
    }
  };
  [[nodiscard]] IndexRange index_range(gfx::Rect r) const;

  /// Outcome of a damage-scoped pass: how many grid points were read and
  /// whether any of them differed from the retained value.
  struct ScanResult {
    std::int64_t compared = 0;
    bool differed = false;
  };

  /// Fused gather + compare over the grid points inside `r`: reads each
  /// covered point from `fb`, compares it with `retained`, and writes the
  /// fresh value back -- damage-scoped retention update and classification
  /// in one pass.  `retained.size()` must equal sample_count().
  ScanResult update_in_rect(const gfx::Framebuffer& fb, gfx::Rect r,
                            std::vector<gfx::Rgb888>& retained) const;

  /// Compares the grid points inside `r` between two full frames (full-frame
  /// retention mode); no early exit so `compared` is the exact covered count.
  [[nodiscard]] ScanResult compare_in_rect(const gfx::Framebuffer& fb,
                                           const gfx::Framebuffer& prev,
                                           gfx::Rect r) const;

 private:
  gfx::Size screen_;
  GridSpec grid_;
  std::vector<gfx::Point> points_;       // centre pixel of each grid cell
  std::vector<std::size_t> flat_index_;  // same points as linear fb offsets
  std::vector<int> center_xs_;           // centre x per column (ascending)
  std::vector<int> center_ys_;           // centre y per row (ascending)
};

}  // namespace ccdem::core
