// ContentRateMeter: measures the paper's central metric.
//
// The content rate is "the number of contents per second" -- the frame rate
// minus the redundant frame rate.  The meter listens to every composition,
// samples the framebuffer on a sparse grid, and compares against the
// previous frame's retained samples (paper section 3.1: double buffering +
// grid-based comparison).  A sliding window (default 1 s, matching the
// per-second definition) turns per-frame meaningful/redundant
// classifications into a rate.
//
// Host-side cost is damage-scoped: the compositor reconciles its back
// buffer to the previous frame before composing, so the current frame can
// only differ from the last one inside FrameInfo::damage.  Grid points
// outside the damage are provably unchanged and are skipped (counted in
// meter.pixels_compare_skipped); an empty-damage frame is classified
// redundant without touching a single pixel.  The *modeled* comparison cost
// (compare_cost_per_frame_ms) deliberately stays a function of the full
// grid size -- it represents the instrumented device of the paper, not this
// simulator's shortcut -- so classifications, rates, and power results are
// bit-identical with culling on or off.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/grid_sampler.h"
#include "core/metering_cost_model.h"
#include "gfx/buffer_pool.h"
#include "gfx/surface_flinger.h"
#include "obs/obs.h"
#include "sim/time.h"

namespace ccdem::core {

/// How the previous frame is retained for comparison.
enum class MeterMode {
  /// Store only the sampled grid pixels of the previous frame (cheap; the
  /// default).  Comparison results are identical to full-frame mode because
  /// only grid points are ever compared.
  kSampledSnapshot,
  /// Store the entire previous frame -- the paper's literal architecture
  /// ("the framebuffer data are stored at an extra buffer").  Costs a
  /// damage-sized copy per composition; kept for fidelity and for workloads
  /// that need the previous frame for other purposes (e.g. the OLED
  /// emission model could diff luma).
  kFullFrame,
};

/// Corrupts the meter's retained grid samples before a comparison (fault
/// layer: readback/bus bit flips).  Declared here so core stays independent
/// of the fault library; the injector implements it.
class SampleFault {
 public:
  virtual ~SampleFault() = default;
  virtual void corrupt_samples(sim::Time t,
                               std::vector<gfx::Rgb888>& samples) = 0;
};

class ContentRateMeter final : public gfx::FrameListener {
 public:
  /// `pool` (optional) recycles the sample snapshots (and, in full-frame
  /// mode, the retained framebuffer) across meter lifetimes.
  ContentRateMeter(gfx::Size screen, GridSpec grid,
                   sim::Duration window = sim::seconds(1),
                   MeterMode mode = MeterMode::kSampledSnapshot,
                   gfx::BufferPool* pool = nullptr);
  ~ContentRateMeter() override;

  /// FrameListener: classifies the composed frame and updates the window.
  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer& fb) override;

  /// Attaches an observability sink (may be null to detach).  Registers the
  /// meter's counters and emits a meter span (with the cost model's modeled
  /// comparison duration) per classified frame.
  void set_obs(obs::ObsSink* obs);

  /// Corrupts retained grid samples ahead of each comparison (fault layer;
  /// sampled-snapshot mode only).  Null -- the default -- costs the hot
  /// path nothing but one pointer test.  Not owned.
  void set_sample_fault(SampleFault* fault) { sample_fault_ = fault; }

  /// When true (default), classification reads only the grid points inside
  /// the frame's damage region; when false it rescans the full grid every
  /// frame (the pre-culling reference path).  Verdicts are identical either
  /// way -- the property tests assert it -- only the host work differs.
  void set_damage_culling(bool on) { damage_culling_ = on; }
  [[nodiscard]] bool damage_culling() const { return damage_culling_; }

  /// Content rate over the sliding window ending at `now` (fps).
  [[nodiscard]] double content_rate(sim::Time now) const;
  /// Frame rate (all compositions) over the same window (fps).
  [[nodiscard]] double frame_rate(sim::Time now) const;
  /// Redundant frame rate = frame rate - content rate.
  [[nodiscard]] double redundant_rate(sim::Time now) const;

  /// Lifetime counters.
  [[nodiscard]] std::uint64_t total_frames() const { return total_frames_; }
  [[nodiscard]] std::uint64_t meaningful_frames() const {
    return meaningful_frames_;
  }
  [[nodiscard]] std::uint64_t redundant_frames() const {
    return total_frames_ - meaningful_frames_;
  }

  /// Ground-truth agreement counters (the compositor's exact changed-pixel
  /// flag vs the meter's grid decision); drives Fig. 6's error rate.
  [[nodiscard]] std::uint64_t misclassified_frames() const {
    return misclassified_;
  }
  [[nodiscard]] double error_rate() const {
    return total_frames_ == 0
               ? 0.0
               : static_cast<double>(misclassified_) /
                     static_cast<double>(total_frames_);
  }

  /// Accumulated device-model comparison time and energy (cost accounting).
  [[nodiscard]] double total_compare_ms() const { return total_compare_ms_; }
  [[nodiscard]] double compare_cost_per_frame_ms() const {
    return cost_model_.duration_ms(
        static_cast<std::int64_t>(sampler_.sample_count()));
  }
  [[nodiscard]] const MeteringCostModel& cost_model() const {
    return cost_model_;
  }
  [[nodiscard]] const GridSampler& sampler() const { return sampler_; }
  [[nodiscard]] MeterMode mode() const { return mode_; }

  /// Full-frame mode only: the retained previous frame.
  [[nodiscard]] const gfx::Framebuffer& previous_frame() const;

 private:
  /// Drops window observations with t <= now - window and keeps the running
  /// counts in step -- the single source of truth for the window edge.
  /// Const because the rate queries (logically read-only) call it; the
  /// window state is mutable bookkeeping.
  void expire(sim::Time now) const;
  [[nodiscard]] bool classify_sampled(const gfx::Framebuffer& fb,
                                      const gfx::Region& damage, bool primed);
  [[nodiscard]] bool classify_full_frame(const gfx::Framebuffer& fb,
                                         const gfx::Region& damage,
                                         bool primed);

  GridSampler sampler_;
  MeteringCostModel cost_model_;
  sim::Duration window_;
  MeterMode mode_;
  gfx::BufferPool* pool_ = nullptr;
  bool damage_culling_ = true;
  /// Sampled mode: the previous frame's grid samples.  Damage culling
  /// updates only the covered points in place; the uncovered ones are
  /// already correct because the frame cannot differ outside its damage.
  std::vector<gfx::Rgb888> samples_;
  /// Sampled mode, unculled path only: scratch for the full fresh capture.
  std::vector<gfx::Rgb888> scratch_;
  /// Full-frame mode: the retained previous frame.
  gfx::Framebuffer retained_;
  bool have_prev_ = false;
  SampleFault* sample_fault_ = nullptr;

  struct Obs {
    sim::Time t;
    bool meaningful;
  };
  /// Window state is mutable so the const rate queries can expire through
  /// the same code path on_frame uses (see expire()).
  mutable std::deque<Obs> window_obs_;
  mutable std::uint64_t window_frames_ = 0;      // == window_obs_.size()
  mutable std::uint64_t window_meaningful_ = 0;  // meaningful obs in window
  std::uint64_t total_frames_ = 0;
  std::uint64_t meaningful_frames_ = 0;
  std::uint64_t misclassified_ = 0;
  double total_compare_ms_ = 0.0;
  /// Grid points actually read by the most recent classification (damage
  /// culling or the unculled path's early exit make this smaller than
  /// sample_count()).
  std::int64_t last_compared_ = 0;
  /// Grid points the damage proof let the last classification skip.
  std::int64_t last_skipped_ = 0;

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_frames_ = nullptr;
  std::uint64_t* ctr_meaningful_ = nullptr;
  std::uint64_t* ctr_pixels_compared_ = nullptr;
  std::uint64_t* ctr_pixels_skipped_ = nullptr;
  std::uint64_t* ctr_misclassified_ = nullptr;
};

}  // namespace ccdem::core
