// DisplayPowerManager: the proposed system, assembled.
//
// Wires the content-rate meter to the compositor, runs the policy pipeline
// on a fixed cadence (meter sample -> stages -> arbiter, see
// core/policy_pipeline.h), applies touch boosting, pushes rate decisions
// to the panel, charges the metering CPU cost to the device power model,
// and records the content-rate / refresh-rate traces the evaluation
// figures use.  Everything policy-shaped lives in the pipeline's stages;
// this class owns metering, actuation (including the self-healing retry
// ladder) and the evaluation cadence.
#pragma once

#include <memory>

#include "core/content_rate_meter.h"
#include "core/control_config.h"
#include "core/policy_pipeline.h"
#include "core/touch_booster.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "input/touch_event.h"
#include "obs/obs.h"
#include "power/device_power_model.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ccdem::core {

class SelfRefreshController;

class DisplayPowerManager final : public input::TouchListener,
                                  public gfx::FrameListener,
                                  public RecoveryHost {
 public:
  /// `power` may be null (no energy accounting, e.g. in unit tests).
  /// `pool` (optional) recycles the meter's snapshot buffers.  `obs`
  /// (optional) receives the dpm.* counters, the meter's counters, the
  /// pipeline's policy.* counters, and govern/arbiter spans per
  /// evaluation tick.  The pipeline must be non-null; build one with
  /// core::build_pipeline().
  DisplayPowerManager(sim::Simulator& sim, display::DisplayPanel& panel,
                      gfx::SurfaceFlinger& flinger,
                      std::unique_ptr<PolicyPipeline> pipeline,
                      power::DevicePowerModel* power, DpmConfig config = {},
                      gfx::BufferPool* pool = nullptr,
                      obs::ObsSink* obs = nullptr);

  DisplayPowerManager(const DisplayPowerManager&) = delete;
  DisplayPowerManager& operator=(const DisplayPowerManager&) = delete;

  /// TouchListener: feeds the booster and reacts immediately (the boost does
  /// not wait for the next evaluation tick).
  void on_touch(const input::TouchEvent& e) override;

  /// FrameListener: forwards to the meter and charges metering energy.
  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer& fb) override;

  void stop() {
    running_ = false;
    pipeline_->stop();
  }

  [[nodiscard]] const ContentRateMeter& meter() const { return meter_; }
  [[nodiscard]] const PolicyPipeline& pipeline() const { return *pipeline_; }
  [[nodiscard]] PolicyPipeline& pipeline() { return *pipeline_; }
  [[nodiscard]] const TouchBooster& booster() const { return booster_; }

  /// The self-refresh controller owned by the pipeline's self_refresh
  /// stage; null when no such stage is registered.
  [[nodiscard]] SelfRefreshController* self_refresh();

  /// Current recovery state (kNormal whenever recovery is disabled).
  [[nodiscard]] DegradationState degradation_state() const {
    return degradation_;
  }
  /// Faults since the last acknowledged switch / safe-mode re-arm.
  [[nodiscard]] int consecutive_faults() const { return consecutive_faults_; }

  /// Forwards a sample-corruption hook to the meter (fault layer).
  void set_sample_fault(SampleFault* fault) { meter_.set_sample_fault(fault); }

  /// Content rate sampled at each evaluation tick (fps).
  [[nodiscard]] const sim::Trace& content_rate_trace() const {
    return content_rate_trace_;
  }
  /// Refresh rate actually requested over time (Hz; step signal).
  [[nodiscard]] const sim::Trace& refresh_rate_trace() const {
    return refresh_rate_trace_;
  }

  // --- RecoveryHost (the recovery stage's view of the actuation plane) ----
  [[nodiscard]] bool safe_mode() const override {
    return degradation_ == DegradationState::kSafeMode;
  }
  [[nodiscard]] sim::Time safe_until() const override { return safe_until_; }
  void rearm_safe_mode(sim::Time t) override;
  void note_fault(sim::Time t) override;
  void mark_fallback() override;
  void abandon_pending(sim::Time t) override;
  [[nodiscard]] int pending_target() const override { return pending_target_; }
  [[nodiscard]] sim::Time pending_since() const override {
    return pending_since_;
  }
  [[nodiscard]] std::uint64_t evaluations() const override {
    return evaluations_;
  }

 private:
  void evaluate(sim::Time t);
  [[nodiscard]] int boost_target_hz() const;

  // --- self-healing actuation (all no-ops unless recovery is enabled) -----
  /// The raw push: set_refresh_rate + rate-change counter + trace record.
  display::SwitchResult push_rate(sim::Time t, int hz);
  /// Pushes `hz` to the panel, recording the trace/counter on a change and
  /// feeding the recovery state machine on a NAK or an ack.
  void request_rate(sim::Time t, int hz);
  void schedule_retry(sim::Time t);
  void on_retry(sim::Time t);
  void set_degradation(DegradationState s);
  void enter_safe_mode(sim::Time t);

  sim::Simulator& sim_;
  display::DisplayPanel& panel_;
  std::unique_ptr<PolicyPipeline> pipeline_;
  power::DevicePowerModel* power_;
  DpmConfig config_;
  ContentRateMeter meter_;
  TouchBooster booster_;
  /// Whether a boost stage is registered (the legacy touch_boost gate).
  bool boost_enabled_ = false;
  sim::Trace content_rate_trace_{"content_rate_fps"};
  sim::Trace refresh_rate_trace_{"refresh_hz"};
  bool running_ = true;

  /// The pipeline's previous policy decision; a change is one section
  /// transition.
  int prev_policy_hz_ = 0;
  std::uint64_t evaluations_ = 0;

  // --- recovery state (inert while config_.recovery.enabled is false) -----
  DegradationState degradation_ = DegradationState::kNormal;
  int pending_target_ = 0;  ///< NAK'd target on the retry ladder; 0 = none
  int retries_ = 0;
  sim::Time pending_since_{};
  bool retry_scheduled_ = false;
  sim::EventHandle retry_event_{};
  int consecutive_faults_ = 0;
  sim::Time safe_until_{};

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_evaluations_ = nullptr;
  std::uint64_t* ctr_rate_changes_ = nullptr;
  std::uint64_t* ctr_section_transitions_ = nullptr;
  std::uint64_t* ctr_boost_activations_ = nullptr;
  std::uint64_t* ctr_retries_ = nullptr;
  std::uint64_t* ctr_retry_giveups_ = nullptr;
  std::uint64_t* ctr_safe_mode_entries_ = nullptr;
  std::uint64_t* ctr_safe_mode_rearms_ = nullptr;
  double* gauge_degradation_ = nullptr;
};

}  // namespace ccdem::core
