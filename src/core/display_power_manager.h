// DisplayPowerManager: the proposed system, assembled.
//
// Wires the content-rate meter to the compositor, evaluates the refresh
// policy on a fixed cadence, applies touch boosting, pushes rate decisions
// to the panel, charges the metering CPU cost to the device power model, and
// records the content-rate / refresh-rate traces the evaluation figures use.
#pragma once

#include <memory>

#include "core/content_rate_meter.h"
#include "core/refresh_policy.h"
#include "core/touch_booster.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "input/touch_event.h"
#include "obs/obs.h"
#include "power/device_power_model.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ccdem::core {

/// Self-healing behaviour against a faulty panel link (DESIGN.md section 9).
/// Disabled by default -- the paper's kernel-patched panel never fails, and
/// with `enabled == false` the controller registers no extra counters and
/// takes no extra branches on the ack path, keeping golden traces
/// bit-identical.  The device layer auto-enables it when a FaultPlan is
/// active.
struct RecoveryConfig {
  bool enabled = false;
  /// A NAK'd switch is retried this many times with exponential backoff
  /// (backoff, 2x, 4x, ...) before the attempt counts as one fault.
  int max_retries = 4;
  sim::Duration retry_backoff = sim::milliseconds(40);
  /// A target unreached for this long (NAK streak or settle stall) counts
  /// as one fault and abandons the retry ladder.
  sim::Duration switch_timeout = sim::milliseconds(400);
  /// Watchdog: content rate persistently above the panel's effective rate
  /// (delivered-quality collapse), or no vsync progress, sustained for this
  /// long forces fallback to the maximum advertised rate.
  sim::Duration watchdog_window = sim::milliseconds(600);
  /// Consecutive faults (retry giveups, switch timeouts, watchdog trips)
  /// without an intervening acknowledged switch before safe mode engages:
  /// content-rate control off, panel pinned to the maximum advertised rate.
  int safe_mode_after = 4;
  /// Safe mode re-arms (section control resumes, fault count resets) after
  /// this cooldown.
  sim::Duration safe_mode_cooldown = sim::seconds(3);
};

/// Controller health, exported as the dpm.degradation_state gauge (only
/// when recovery is enabled).
enum class DegradationState {
  kNormal = 0,    ///< section control, panel acking
  kRetrying = 1,  ///< a NAK'd switch is on the retry/backoff ladder
  kFallback = 2,  ///< watchdog or giveup forced the maximum rate
  kSafeMode = 3,  ///< content control suspended until the cooldown expires
};

struct DpmConfig {
  GridSpec grid = GridSpec::grid_9k();
  sim::Duration meter_window = sim::seconds(1);
  sim::Duration eval_period = sim::milliseconds(100);
  bool touch_boost = true;
  /// How long the boost pins the maximum rate after the last touch event.
  /// Android-era input boosts hold a few hundred ms; by then the meter has
  /// seen the interaction burst and the section table takes over.
  sim::Duration boost_hold = sim::milliseconds(500);
  /// Rate the booster targets; 0 = the panel's maximum.  On tall ladders
  /// (120 Hz LTPO) boosting all the way to the top wastes power on content
  /// that cannot exceed 60 fps -- cap it at the app-relevant maximum.
  int boost_hz = 0;
  /// Floor below which the controller never parks the panel; 0 = the
  /// ladder's minimum.  Deep floors (1 Hz) amplify any metering miss --
  /// content the sparse grid cannot see (a 3 px cursor) freezes at 1 fps --
  /// so conservative deployments pin a safety floor, as Android's
  /// "minimum refresh rate" setting later did.
  int min_hz = 0;
  /// Threshold placement for the section table (0.5 = paper's Equation (1)).
  double section_alpha = 0.5;
  /// Charge the metering comparison's CPU energy to the power model.  The
  /// comparison is memory-bound and runs on whatever core is already awake
  /// for composition, so the *incremental* power while comparing is well
  /// below a core's peak (the paper calls the cost "almost no overhead").
  bool charge_meter_cost = true;
  double meter_cpu_mw = 100.0;
  /// Minimum time the touch boost stays up after the touch that opened it
  /// (tolerates a lossy input path; 0 = classic behaviour).
  sim::Duration boost_min_hold{};
  /// Damage-scoped metering (the O(changed-pixels) hot path).  The DST
  /// harness turns it off to run the unculled reference meter as a
  /// differential oracle; classifications must be identical either way.
  bool meter_damage_culling = true;
  RecoveryConfig recovery{};
};

class DisplayPowerManager final : public input::TouchListener,
                                  public gfx::FrameListener {
 public:
  /// `power` may be null (no energy accounting, e.g. in unit tests).
  /// `pool` (optional) recycles the meter's snapshot buffers.  `obs`
  /// (optional) receives the dpm.* counters, the meter's counters, and a
  /// govern span per evaluation tick.
  DisplayPowerManager(sim::Simulator& sim, display::DisplayPanel& panel,
                      gfx::SurfaceFlinger& flinger,
                      std::unique_ptr<RefreshPolicy> policy,
                      power::DevicePowerModel* power, DpmConfig config = {},
                      gfx::BufferPool* pool = nullptr,
                      obs::ObsSink* obs = nullptr);

  DisplayPowerManager(const DisplayPowerManager&) = delete;
  DisplayPowerManager& operator=(const DisplayPowerManager&) = delete;

  /// TouchListener: feeds the booster and reacts immediately (the boost does
  /// not wait for the next evaluation tick).
  void on_touch(const input::TouchEvent& e) override;

  /// FrameListener: forwards to the meter and charges metering energy.
  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer& fb) override;

  void stop() { running_ = false; }

  [[nodiscard]] const ContentRateMeter& meter() const { return meter_; }
  [[nodiscard]] const RefreshPolicy& policy() const { return *policy_; }
  [[nodiscard]] const TouchBooster& booster() const { return booster_; }

  /// Current recovery state (kNormal whenever recovery is disabled).
  [[nodiscard]] DegradationState degradation_state() const {
    return degradation_;
  }
  /// Faults since the last acknowledged switch / safe-mode re-arm.
  [[nodiscard]] int consecutive_faults() const { return consecutive_faults_; }

  /// Forwards a sample-corruption hook to the meter (fault layer).
  void set_sample_fault(SampleFault* fault) { meter_.set_sample_fault(fault); }

  /// Content rate sampled at each evaluation tick (fps).
  [[nodiscard]] const sim::Trace& content_rate_trace() const {
    return content_rate_trace_;
  }
  /// Refresh rate actually requested over time (Hz; step signal).
  [[nodiscard]] const sim::Trace& refresh_rate_trace() const {
    return refresh_rate_trace_;
  }

 private:
  void evaluate(sim::Time t);
  [[nodiscard]] int boost_target_hz() const;

  // --- self-healing helpers (all no-ops unless recovery is enabled) -------
  /// The raw push: set_refresh_rate + rate-change counter + trace record.
  display::SwitchResult push_rate(sim::Time t, int hz);
  /// Pushes `hz` to the panel, recording the trace/counter on a change and
  /// feeding the recovery state machine on a NAK or an ack.
  void request_rate(sim::Time t, int hz);
  void schedule_retry(sim::Time t);
  void on_retry(sim::Time t);
  void abandon_pending(sim::Time t);
  /// One fault observed; escalates to safe mode after the configured streak.
  void note_fault(sim::Time t);
  void set_degradation(DegradationState s);
  void enter_safe_mode(sim::Time t);
  [[nodiscard]] bool safe_mode() const {
    return degradation_ == DegradationState::kSafeMode;
  }

  sim::Simulator& sim_;
  display::DisplayPanel& panel_;
  std::unique_ptr<RefreshPolicy> policy_;
  power::DevicePowerModel* power_;
  DpmConfig config_;
  ContentRateMeter meter_;
  TouchBooster booster_;
  sim::Trace content_rate_trace_{"content_rate_fps"};
  sim::Trace refresh_rate_trace_{"refresh_hz"};
  bool running_ = true;

  /// The policy's previous decision; a change is one section transition.
  int prev_policy_hz_ = 0;
  std::uint64_t evaluations_ = 0;

  // --- recovery state (inert while config_.recovery.enabled is false) -----
  DegradationState degradation_ = DegradationState::kNormal;
  int pending_target_ = 0;  ///< NAK'd target on the retry ladder; 0 = none
  int retries_ = 0;
  sim::Time pending_since_{};
  bool retry_scheduled_ = false;
  sim::EventHandle retry_event_{};
  int consecutive_faults_ = 0;
  sim::Time safe_until_{};
  bool underserved_ = false;       ///< content rate above the presented rate
  sim::Time underserved_since_{};
  std::uint64_t last_vsync_count_ = 0;
  sim::Time last_vsync_progress_{};

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_evaluations_ = nullptr;
  std::uint64_t* ctr_rate_changes_ = nullptr;
  std::uint64_t* ctr_section_transitions_ = nullptr;
  std::uint64_t* ctr_boost_activations_ = nullptr;
  std::uint64_t* ctr_retries_ = nullptr;
  std::uint64_t* ctr_retry_giveups_ = nullptr;
  std::uint64_t* ctr_watchdog_fallbacks_ = nullptr;
  std::uint64_t* ctr_safe_mode_entries_ = nullptr;
  std::uint64_t* ctr_safe_mode_rearms_ = nullptr;
  double* gauge_degradation_ = nullptr;
};

}  // namespace ccdem::core
