// Configuration structs for the control plane (meter, pipeline stages,
// recovery), shared between DisplayPowerManager and FrameRateGovernor.
//
// MeterConfig is the one description of "how the content-rate meter runs";
// GovernorConfig and DpmConfig both embed it instead of duplicating the
// grid / window / cadence / culling fields (they used to drift).
#pragma once

#include "core/grid_sampler.h"
#include "sim/time.h"

namespace ccdem::core {

/// How the content-rate meter samples the screen.  Shared verbatim by the
/// proposed controller (DpmConfig) and the E3 governor (GovernorConfig).
struct MeterConfig {
  GridSpec grid = GridSpec::grid_9k();
  /// Sliding window the content rate is measured over.
  sim::Duration window = sim::seconds(1);
  /// Evaluation cadence of the controller driven by this meter.
  sim::Duration eval_period = sim::milliseconds(100);
  /// Damage-scoped metering (the O(changed-pixels) hot path).  The DST
  /// harness turns it off to run the unculled reference meter as a
  /// differential oracle; classifications must be identical either way.
  bool damage_culling = true;
};

/// Self-healing behaviour against a faulty panel link (DESIGN.md section 9).
/// Disabled by default -- the paper's kernel-patched panel never fails, and
/// with `enabled == false` the controller registers no extra counters and
/// takes no extra branches on the ack path, keeping golden traces
/// bit-identical.  The device layer auto-enables it when a FaultPlan is
/// active.
struct RecoveryConfig {
  bool enabled = false;
  /// A NAK'd switch is retried this many times with exponential backoff
  /// (backoff, 2x, 4x, ...) before the attempt counts as one fault.
  int max_retries = 4;
  sim::Duration retry_backoff = sim::milliseconds(40);
  /// A target unreached for this long (NAK streak or settle stall) counts
  /// as one fault and abandons the retry ladder.
  sim::Duration switch_timeout = sim::milliseconds(400);
  /// Watchdog: content rate persistently above the panel's effective rate
  /// (delivered-quality collapse), or no vsync progress, sustained for this
  /// long forces fallback to the maximum advertised rate.
  sim::Duration watchdog_window = sim::milliseconds(600);
  /// Consecutive faults (retry giveups, switch timeouts, watchdog trips)
  /// without an intervening acknowledged switch before safe mode engages:
  /// content-rate control off, panel pinned to the maximum advertised rate.
  int safe_mode_after = 4;
  /// Safe mode re-arms (section control resumes, fault count resets) after
  /// this cooldown.
  sim::Duration safe_mode_cooldown = sim::seconds(3);
};

/// Controller health, exported as the dpm.degradation_state gauge (only
/// when recovery is enabled).
enum class DegradationState {
  kNormal = 0,    ///< section control, panel acking
  kRetrying = 1,  ///< a NAK'd switch is on the retry/backoff ladder
  kFallback = 2,  ///< watchdog or giveup forced the maximum rate
  kSafeMode = 3,  ///< content control suspended until the cooldown expires
};

/// PredictiveRateStage: exploit frame coherence (Anglada et al., PAPERS.md)
/// to step the rate down *before* the reactive section table would, on a
/// detected stable downtrend -- with asymmetric confirmation in the
/// DynClockVita cooldown idiom (ups immediate, downs confirmed).
struct PredictiveConfig {
  /// Meter samples of history the trend estimate looks back over.
  int window = 8;
  /// Evaluation ticks of lookahead applied to a stable downtrend.
  double lead = 2.0;
  /// Residual standard deviation (fps) around the window's straight-line
  /// trend above which the window is considered unstable and prediction
  /// falls back to the reactive rate.
  double stability_threshold = 2.0;
  /// Consecutive ticks a lower rate must be predicted before it applies
  /// (the asymmetric counterpart of the instant up-step).
  int down_confirmations = 2;
  /// Minimum spacing between applied down-steps.
  sim::Duration down_cooldown = sim::milliseconds(300);
};

/// DvfsCoControlStage: couples the display rung to a modeled GPU clock
/// ladder.  Frametime instability pushes the GPU rung up immediately; a
/// sustained stable streak with capacity headroom steps it down -- and the
/// display target is capped at what the current rung can actually render
/// (no point refreshing faster than the GPU produces frames).
struct DvfsConfig {
  /// Depth of the modeled GPU clock ladder; rung r delivers
  /// max_hz * (r+1)/rungs fps of render capacity.
  int rungs = 5;
  /// Capacity margin required over the observed content rate before the
  /// ladder steps down a rung.  The margin also bounds how hard the
  /// display cap can bite: at 1.6 a burst to `capacity / 1.6` fps still
  /// renders inside the rung, keeping delivered quality above the
  /// experiment gate while the ladder catches up.
  double headroom = 1.6;
  /// Tick-over-tick content-rate change (fps) that counts as instability
  /// and forces an immediate up-rung.
  double instability_fps = 8.0;
  /// Consecutive stable ticks before a down-rung is considered
  /// (FRAMETIME_STABLE_FRAMES_N in DynClockVita's dynamic mode).
  int stable_ticks = 5;
};

/// DegradationLadderStage: the system-pressure safety plane (DESIGN.md
/// section 14).  Disabled by default -- with `enabled == false` the stage is
/// never built, no degrade.* counters register and golden traces stay
/// bit-identical.  The device layer auto-enables it when the FaultPlan
/// carries pressure episode classes.
struct LadderConfig {
  bool enabled = false;
  /// Minimum dwell on a rung before the ladder sheds one more (rungs are
  /// never skipped: pressure severity only sets the shedding *target*).
  sim::Duration step_hold = sim::milliseconds(200);
  /// Hysteretic recovery: after pressure clears, one rung is regained per
  /// cooldown (never faster, never skipping a rung).
  sim::Duration recovery_cooldown = sim::milliseconds(500);
  /// Brightness multiplier applied at the dim rung (rung 3+).
  double dim_factor = 0.6;
  /// Rate cap applied from rung 2 up; 0 = one ladder step below the
  /// hardware maximum.
  int cap_hz = 0;
};

/// What the degradation ladder listens to: the fault layer's modeled
/// environmental pressure (thermal / brownout / vsync jitter).  Severity is
/// the rung the ladder sheds toward -- 0 = no pressure, up to 4 = safe mode.
class PressureSource {
 public:
  virtual ~PressureSource() = default;
  [[nodiscard]] virtual bool under_pressure(sim::Time t) const = 0;
  [[nodiscard]] virtual int severity(sim::Time t) const = 0;
};

/// Configuration of the proposed controller: the meter plus the knobs the
/// policy-pipeline stages are built from (which stages actually run is the
/// PipelineSpec's choice; unused knobs are inert).
struct DpmConfig {
  MeterConfig meter{};
  /// How long the boost pins the maximum rate after the last touch event.
  /// Android-era input boosts hold a few hundred ms; by then the meter has
  /// seen the interaction burst and the section table takes over.
  sim::Duration boost_hold = sim::milliseconds(500);
  /// Rate the booster targets; 0 = the panel's maximum.  On tall ladders
  /// (120 Hz LTPO) boosting all the way to the top wastes power on content
  /// that cannot exceed 60 fps -- cap it at the app-relevant maximum.
  int boost_hz = 0;
  /// Floor below which the controller never parks the panel; 0 = the
  /// ladder's minimum.  Deep floors (1 Hz) amplify any metering miss --
  /// content the sparse grid cannot see (a 3 px cursor) freezes at 1 fps --
  /// so conservative deployments pin a safety floor, as Android's
  /// "minimum refresh rate" setting later did.
  int min_hz = 0;
  /// Threshold placement for the section table (0.5 = paper's Equation (1)).
  double section_alpha = 0.5;
  /// Charge the metering comparison's CPU energy to the power model.  The
  /// comparison is memory-bound and runs on whatever core is already awake
  /// for composition, so the *incremental* power while comparing is well
  /// below a core's peak (the paper calls the cost "almost no overhead").
  bool charge_meter_cost = true;
  double meter_cpu_mw = 100.0;
  /// Minimum time the touch boost stays up after the touch that opened it
  /// (tolerates a lossy input path; 0 = classic behaviour).
  sim::Duration boost_min_hold{};
  /// Consecutive down-decisions the hysteresis stage requires before a
  /// rate decrease applies (increases always pass through immediately).
  int hysteresis_down_confirmations = 3;
  PredictiveConfig predictive{};
  DvfsConfig dvfs{};
  RecoveryConfig recovery{};
  LadderConfig ladder{};
};

}  // namespace ccdem::core
