#include "core/section_table.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace ccdem::core {

SectionTable SectionTable::build(const display::RefreshRateSet& rates,
                                 double alpha) {
  assert(!rates.empty());
  assert(alpha >= 0.0 && alpha <= 1.0);
  SectionTable table;
  double lo = 0.0;
  for (std::size_t i = 0; i < rates.count(); ++i) {
    const double r_prev = i == 0 ? 0.0 : static_cast<double>(rates.at(i - 1));
    const double r_i = static_cast<double>(rates.at(i));
    // Threshold splitting section i-1 from section i (Equation (1) with the
    // generalised split position alpha; 0.5 reproduces the paper's median).
    const double hi =
        i + 1 < rates.count()
            ? r_prev + alpha * (r_i - r_prev)
            : std::numeric_limits<double>::infinity();
    table.sections_.push_back({lo, hi, rates.at(i)});
    lo = hi;
  }
  return table;
}

int SectionTable::rate_for(double content_fps) const {
  return sections_[section_index_for(content_fps)].refresh_hz;
}

std::size_t SectionTable::section_index_for(double content_fps) const {
  assert(!sections_.empty());
  const double c = std::max(content_fps, 0.0);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (c < sections_[i].hi_fps) return i;
  }
  return sections_.size() - 1;
}

std::string SectionTable::to_string() const {
  std::ostringstream os;
  for (const Section& s : sections_) {
    os << "[" << s.lo_fps << ", ";
    if (std::isinf(s.hi_fps)) {
      os << "inf";
    } else {
      os << s.hi_fps;
    }
    os << ") fps -> " << s.refresh_hz << " Hz\n";
  }
  return os.str();
}

}  // namespace ccdem::core
