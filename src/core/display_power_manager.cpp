#include "core/display_power_manager.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/policy_stages.h"

namespace ccdem::core {

DisplayPowerManager::DisplayPowerManager(
    sim::Simulator& sim, display::DisplayPanel& panel,
    gfx::SurfaceFlinger& flinger, std::unique_ptr<PolicyPipeline> pipeline,
    power::DevicePowerModel* power, DpmConfig config, gfx::BufferPool* pool,
    obs::ObsSink* obs)
    : sim_(sim),
      panel_(panel),
      pipeline_(std::move(pipeline)),
      power_(power),
      config_(config),
      meter_(flinger.screen_size(), config.meter.grid, config.meter.window,
             MeterMode::kSampledSnapshot, pool),
      booster_(config.boost_hold, config.boost_min_hold),
      prev_policy_hz_(panel.refresh_hz()),
      obs_(obs) {
  assert(pipeline_ != nullptr);
  boost_enabled_ = pipeline_->has_stage("boost");
  meter_.set_damage_culling(config_.meter.damage_culling);
  if (obs_ != nullptr) {
    meter_.set_obs(obs_);
    ctr_evaluations_ = &obs_->counters.counter("dpm.evaluations");
    ctr_rate_changes_ = &obs_->counters.counter("dpm.rate_changes");
    ctr_section_transitions_ =
        &obs_->counters.counter("dpm.section_transitions");
    ctr_boost_activations_ = &obs_->counters.counter("dpm.boost_activations");
    if (config_.recovery.enabled) {
      // Registered only with recovery on: a disabled controller publishes
      // the exact pre-recovery counter set, so golden snapshots stay
      // bit-identical (the zero-cost-when-disabled contract).
      ctr_retries_ = &obs_->counters.counter("dpm.retries");
      ctr_retry_giveups_ = &obs_->counters.counter("dpm.retry_giveups");
      ctr_safe_mode_entries_ =
          &obs_->counters.counter("dpm.safe_mode_entries");
      ctr_safe_mode_rearms_ = &obs_->counters.counter("dpm.safe_mode_rearms");
      gauge_degradation_ = &obs_->counters.gauge("dpm.degradation_state");
      *gauge_degradation_ = 0.0;
    }
  }
  pipeline_->set_obs(obs_);
  pipeline_->bind_recovery_host(this);
  flinger.add_listener(this);
  refresh_rate_trace_.record(sim_.now(),
                             static_cast<double>(panel_.refresh_hz()));
  sim_.every(config_.meter.eval_period, [this](sim::Time t) {
    if (!running_) return false;
    evaluate(t);
    return true;
  });
  // Last: stages with their own listeners / event series (self-refresh)
  // register after everything above, preserving the canonical order the
  // device assembly established.
  pipeline_->start(sim_);
}

SelfRefreshController* DisplayPowerManager::self_refresh() {
  auto* stage =
      static_cast<SelfRefreshStage*>(pipeline_->stage("self_refresh"));
  return stage != nullptr ? stage->controller() : nullptr;
}

int DisplayPowerManager::boost_target_hz() const {
  return resolve_boost_hz(panel_.advertised_rates(), config_.boost_hz);
}

void DisplayPowerManager::on_touch(const input::TouchEvent& e) {
  const bool was_active = booster_.active(e.t);
  booster_.on_touch(e);
  if (!was_active && ctr_boost_activations_ != nullptr) {
    ++*ctr_boost_activations_;
  }
  if (!boost_enabled_) return;
  if (config_.recovery.enabled && safe_mode()) return;  // already pinned max
  // Boost immediately: waiting for the next evaluation tick would reopen the
  // reaction-lag hole the booster exists to close.
  request_rate(e.t, boost_target_hz());
}

void DisplayPowerManager::on_frame(const gfx::FrameInfo& info,
                                   const gfx::Framebuffer& fb) {
  meter_.on_frame(info, fb);
  if (power_ != nullptr && config_.charge_meter_cost) {
    power_->add_energy_mj(
        info.composed_at,
        meter_.cost_model().energy_mj(
            static_cast<std::int64_t>(meter_.sampler().sample_count()),
            config_.meter_cpu_mw),
        power::EnergyTag::kMeter);
  }
}

display::SwitchResult DisplayPowerManager::push_rate(sim::Time t, int hz) {
  const display::SwitchResult res = panel_.set_refresh_rate(hz);
  if (res) {
    if (ctr_rate_changes_ != nullptr) ++*ctr_rate_changes_;
    refresh_rate_trace_.record(t, static_cast<double>(hz));
  }
  return res;
}

void DisplayPowerManager::request_rate(sim::Time t, int hz) {
  const display::SwitchResult res = push_rate(t, hz);
  if (!config_.recovery.enabled) return;
  if (res.nacked) {
    if (pending_target_ != hz) {
      pending_target_ = hz;
      pending_since_ = t;
      retries_ = 0;
      if (!safe_mode()) set_degradation(DegradationState::kRetrying);
    }
    if (!retry_scheduled_) schedule_retry(t);
    return;
  }
  if (res.changed) {
    // Acknowledged: the link is responsive.  Close any retry ladder and
    // heal the consecutive-fault streak.
    abandon_pending(t);
    consecutive_faults_ = 0;
    if (!safe_mode()) set_degradation(DegradationState::kNormal);
  }
  // A redundant request (panel already pending at hz) carries no health
  // information either way.
}

void DisplayPowerManager::schedule_retry(sim::Time t) {
  // Exponential backoff: backoff, 2x, 4x, ... per failed attempt.
  const sim::Duration backoff{config_.recovery.retry_backoff.ticks
                              << std::min(retries_, 16)};
  retry_scheduled_ = true;
  retry_event_ = sim_.at(t + backoff, [this](sim::Time rt) { on_retry(rt); });
}

void DisplayPowerManager::on_retry(sim::Time t) {
  retry_scheduled_ = false;
  if (!running_ || pending_target_ == 0) return;
  ++retries_;
  if (ctr_retries_ != nullptr) ++*ctr_retries_;
  CCDEM_OBS_SPAN(obs_, obs::Phase::kRecover, t, sim::Duration{},
                 static_cast<std::uint64_t>(retries_), pending_target_);
  const display::SwitchResult res = push_rate(t, pending_target_);
  if (!res.nacked) {
    // The panel took it (or is already pending there): ladder closed.
    abandon_pending(t);
    consecutive_faults_ = 0;
    if (!safe_mode()) set_degradation(DegradationState::kNormal);
    return;
  }
  if (retries_ >= config_.recovery.max_retries ||
      t - pending_since_ >= config_.recovery.switch_timeout) {
    // Give up on this target: one fault, fall back to the maximum
    // advertised rate (the one request a degraded DDIC is most likely to
    // honour, and the quality-safe direction).
    if (ctr_retry_giveups_ != nullptr) ++*ctr_retry_giveups_;
    abandon_pending(t);
    note_fault(t);
    if (!safe_mode()) {
      set_degradation(DegradationState::kFallback);
      push_rate(t, panel_.advertised_rates().max_hz());
    }
    return;
  }
  schedule_retry(t);
}

void DisplayPowerManager::abandon_pending(sim::Time) {
  if (retry_scheduled_) {
    sim_.cancel(retry_event_);
    retry_scheduled_ = false;
  }
  pending_target_ = 0;
  retries_ = 0;
}

void DisplayPowerManager::note_fault(sim::Time t) {
  ++consecutive_faults_;
  if (!safe_mode() &&
      consecutive_faults_ >= config_.recovery.safe_mode_after) {
    enter_safe_mode(t);
  }
}

void DisplayPowerManager::mark_fallback() {
  if (!safe_mode()) set_degradation(DegradationState::kFallback);
}

void DisplayPowerManager::rearm_safe_mode(sim::Time) {
  consecutive_faults_ = 0;
  if (ctr_safe_mode_rearms_ != nullptr) ++*ctr_safe_mode_rearms_;
  set_degradation(DegradationState::kNormal);
}

void DisplayPowerManager::set_degradation(DegradationState s) {
  if (degradation_ == s) return;
  degradation_ = s;
  if (gauge_degradation_ != nullptr) {
    *gauge_degradation_ = static_cast<double>(s);
  }
}

void DisplayPowerManager::enter_safe_mode(sim::Time t) {
  if (ctr_safe_mode_entries_ != nullptr) ++*ctr_safe_mode_entries_;
  abandon_pending(t);
  safe_until_ = t + config_.recovery.safe_mode_cooldown;
  set_degradation(DegradationState::kSafeMode);
  CCDEM_OBS_SPAN(obs_, obs::Phase::kRecover, t,
                 config_.recovery.safe_mode_cooldown, evaluations_,
                 static_cast<int>(DegradationState::kSafeMode));
  // Pin the maximum advertised rate for the cooldown.  A NAK here opens the
  // retry ladder on the pin itself; every evaluation re-requests it too.
  request_rate(t, panel_.advertised_rates().max_hz());
}

void DisplayPowerManager::evaluate(sim::Time t) {
  ++evaluations_;
  const double content_fps = meter_.content_rate(t);
  content_rate_trace_.record(t, content_fps);

  PolicyInput in;
  in.now = t;
  in.content_fps = content_fps;
  in.current_hz = panel_.refresh_hz();
  in.vsync_count = panel_.vsync_count();
  in.boost_active = boost_enabled_ && booster_.active(t);
  in.rates = &panel_.rates();
  in.advertised = &panel_.advertised_rates();

  const PipelineDecision d = pipeline_->evaluate(in);
  if (!d.preempted && d.policy_hz != prev_policy_hz_) {
    prev_policy_hz_ = d.policy_hz;
    if (ctr_section_transitions_ != nullptr) ++*ctr_section_transitions_;
  }
  const int target = d.target_hz;

  if (ctr_evaluations_ != nullptr) ++*ctr_evaluations_;
  if (config_.recovery.enabled && pending_target_ != 0 &&
      pending_target_ == target) {
    // The retry ladder already owns this target; its backoff cadence drives
    // the re-requests instead of hammering the DDIC every evaluation.
  } else {
    request_rate(t, target);
  }
  CCDEM_OBS_SPAN(obs_, obs::Phase::kGovern, t, sim::Duration{}, evaluations_,
                 target);
}

}  // namespace ccdem::core
