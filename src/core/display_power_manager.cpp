#include "core/display_power_manager.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ccdem::core {

DisplayPowerManager::DisplayPowerManager(sim::Simulator& sim,
                                         display::DisplayPanel& panel,
                                         gfx::SurfaceFlinger& flinger,
                                         std::unique_ptr<RefreshPolicy> policy,
                                         power::DevicePowerModel* power,
                                         DpmConfig config,
                                         gfx::BufferPool* pool,
                                         obs::ObsSink* obs)
    : sim_(sim),
      panel_(panel),
      policy_(std::move(policy)),
      power_(power),
      config_(config),
      meter_(flinger.screen_size(), config.grid, config.meter_window,
             MeterMode::kSampledSnapshot, pool),
      booster_(config.boost_hold),
      prev_policy_hz_(panel.refresh_hz()),
      obs_(obs) {
  assert(policy_ != nullptr);
  if (obs_ != nullptr) {
    meter_.set_obs(obs_);
    ctr_evaluations_ = &obs_->counters.counter("dpm.evaluations");
    ctr_rate_changes_ = &obs_->counters.counter("dpm.rate_changes");
    ctr_section_transitions_ =
        &obs_->counters.counter("dpm.section_transitions");
    ctr_boost_activations_ = &obs_->counters.counter("dpm.boost_activations");
  }
  flinger.add_listener(this);
  refresh_rate_trace_.record(sim_.now(),
                             static_cast<double>(panel_.refresh_hz()));
  sim_.every(config_.eval_period, [this](sim::Time t) {
    if (!running_) return false;
    evaluate(t);
    return true;
  });
}

int DisplayPowerManager::boost_target_hz() const {
  if (config_.boost_hz > 0 && panel_.rates().supports(config_.boost_hz)) {
    return config_.boost_hz;
  }
  return panel_.rates().max_hz();
}

void DisplayPowerManager::on_touch(const input::TouchEvent& e) {
  const bool was_active = booster_.active(e.t);
  booster_.on_touch(e);
  if (!was_active && ctr_boost_activations_ != nullptr) {
    ++*ctr_boost_activations_;
  }
  if (!config_.touch_boost) return;
  // Boost immediately: waiting for the next evaluation tick would reopen the
  // reaction-lag hole the booster exists to close.
  const int hz = boost_target_hz();
  if (panel_.set_refresh_rate(hz)) {
    if (ctr_rate_changes_ != nullptr) ++*ctr_rate_changes_;
    refresh_rate_trace_.record(e.t, static_cast<double>(hz));
  }
}

void DisplayPowerManager::on_frame(const gfx::FrameInfo& info,
                                   const gfx::Framebuffer& fb) {
  meter_.on_frame(info, fb);
  if (power_ != nullptr && config_.charge_meter_cost) {
    power_->add_energy_mj(
        info.composed_at,
        meter_.cost_model().energy_mj(
            static_cast<std::int64_t>(meter_.sampler().sample_count()),
            config_.meter_cpu_mw),
        power::EnergyTag::kMeter);
  }
}

void DisplayPowerManager::evaluate(sim::Time t) {
  ++evaluations_;
  const double content_fps = meter_.content_rate(t);
  content_rate_trace_.record(t, content_fps);

  const int policy_hz = policy_->decide(t, content_fps, panel_.refresh_hz());
  if (policy_hz != prev_policy_hz_) {
    prev_policy_hz_ = policy_hz;
    if (ctr_section_transitions_ != nullptr) ++*ctr_section_transitions_;
  }

  int target = policy_hz;
  if (config_.touch_boost && booster_.active(t)) {
    // While boosted, never go below the policy's own choice (a game whose
    // content warrants more than the boost cap keeps its higher rate).
    target = std::max(boost_target_hz(), policy_hz);
  }
  if (config_.min_hz > 0 && target < config_.min_hz &&
      panel_.rates().supports(config_.min_hz)) {
    target = config_.min_hz;
  }
  if (ctr_evaluations_ != nullptr) ++*ctr_evaluations_;
  if (panel_.set_refresh_rate(target)) {
    if (ctr_rate_changes_ != nullptr) ++*ctr_rate_changes_;
    refresh_rate_trace_.record(t, static_cast<double>(target));
  }
  CCDEM_OBS_SPAN(obs_, obs::Phase::kGovern, t, sim::Duration{}, evaluations_,
                 target);
}

}  // namespace ccdem::core
