// The composable policy pipeline: meter sample -> N stages -> arbiter.
//
// Each evaluation tick the DisplayPowerManager samples the content-rate
// meter and hands the sample to a PolicyPipeline.  The pipeline runs three
// phases over its ordered stages:
//
//   1. preempt  -- a stage may pin the rate and suspend the policy round
//                  entirely (the recovery plane's safe mode).  The first
//                  pin wins; no proposals are gathered.
//   2. propose  -- every stage may contribute a RateProposal.  Later stages
//                  see the proposals gathered so far (`upstream`), which is
//                  how a meta-stage like hysteresis filters the decision of
//                  the rate sources before it.  The arbiter then resolves
//                  deterministically: maximum priority wins, ties break to
//                  the maximum rate, remaining ties to the earliest stage.
//   3. adjust   -- stages may rewrite the arbitrated target in order
//                  (the DVFS co-control cap, the recovery plane's
//                  revalidation / watchdog / pending-timeout fallbacks).
//
// The quality-first composition rule the monolithic controller implemented
// with nested std::max calls (boost over policy over floor) falls out of
// same-priority + max-rate arbitration, which is what makes the legacy
// ControlMode arms byte-identical when replayed through their canonical
// pipeline specs (tests/test_policy_pipeline.cpp proves it over the DST
// corpus).
//
// Observability: the pipeline registers policy.<stage>.proposals and
// policy.<stage>.wins counters per stage and stamps one kArbiter span per
// evaluation (frame = evaluation index, arg = arbitrated target).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/control_config.h"
#include "display/refresh_rate.h"
#include "obs/obs.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ccdem::core {

/// Proposal priorities.  All stock stages propose at kPriorityNormal (the
/// legacy max() composition); kPriorityPin is reserved for stages that must
/// override quality-first arbitration downward.
inline constexpr int kPriorityNormal = 0;
inline constexpr int kPriorityPin = 100;

struct RateProposal {
  int target_hz = 0;
  int priority = kPriorityNormal;
  /// Advisory minimum hold; stages that manage their own hold windows (the
  /// touch booster) leave it zero.  The arbiter records but does not
  /// enforce it.
  sim::Duration hold{};
  /// Proposals marked `policy` carry content-derived decisions; their
  /// maximum is the round's policy_hz, which feeds the section-transition
  /// counter independently of boost/floor overlays (legacy semantics).
  bool policy = true;
};

/// Everything a stage may observe at one evaluation tick.  Stages hold no
/// reference to the panel; the pipeline snapshot decouples them from the
/// device assembly (and keeps propose() trivially testable).
struct PolicyInput {
  sim::Time now{};
  double content_fps = 0.0;
  /// The panel's currently presented rate.
  int current_hz = 0;
  std::uint64_t vsync_count = 0;
  /// True while the touch booster's hold window is open AND a boost stage
  /// is registered (mirrors the legacy touch_boost gate).
  bool boost_active = false;
  /// The hardware ladder.
  const display::RefreshRateSet* rates = nullptr;
  /// What the DDIC currently advertises (== rates unless the fault layer
  /// revoked levels).
  const display::RefreshRateSet* advertised = nullptr;
  /// Proposals gathered so far this round (propose phase only; null in
  /// preempt/adjust).
  const std::vector<RateProposal>* upstream = nullptr;

  /// Maximum target among upstream policy-class proposals; `fallback` when
  /// no rate source has proposed yet.
  [[nodiscard]] int best_policy_hz(int fallback) const {
    int best = fallback;
    bool any = false;
    if (upstream != nullptr) {
      for (const RateProposal& p : *upstream) {
        if (!p.policy) continue;
        best = any ? std::max(best, p.target_hz) : p.target_hz;
        any = true;
      }
    }
    return best;
  }
};

/// Host hooks the recovery stage needs from the actuation plane (the
/// DisplayPowerManager): the retry ladder, fault escalation and safe-mode
/// bookkeeping live with the panel pushes; the stage owns the evaluation-
/// side policy (rearm, safe-mode pin, revalidation, watchdog, timeouts).
class RecoveryHost {
 public:
  virtual ~RecoveryHost() = default;
  [[nodiscard]] virtual bool safe_mode() const = 0;
  [[nodiscard]] virtual sim::Time safe_until() const = 0;
  /// Cooldown elapsed: reset the fault streak and resume content control.
  virtual void rearm_safe_mode(sim::Time t) = 0;
  /// One fault observed; may escalate straight into safe mode.
  virtual void note_fault(sim::Time t) = 0;
  /// Enter the fallback degradation state (no-op while in safe mode).
  virtual void mark_fallback() = 0;
  virtual void abandon_pending(sim::Time t) = 0;
  [[nodiscard]] virtual int pending_target() const = 0;
  [[nodiscard]] virtual sim::Time pending_since() const = 0;
  /// Evaluation index of the tick in flight (for span stamping).
  [[nodiscard]] virtual std::uint64_t evaluations() const = 0;
};

class PolicyStage {
 public:
  virtual ~PolicyStage() = default;

  /// Stable identifier; also the `policy.<name>.*` counter namespace and
  /// the spec keyword for user-specifiable stages.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Pin the rate and suspend this round's propose phase (first pin wins).
  virtual std::optional<int> preempt(const PolicyInput&) {
    return std::nullopt;
  }
  /// Contribute a proposal; `in.upstream` holds earlier stages' proposals.
  /// Not called on preempted rounds (stage state must freeze, matching the
  /// monolithic controller's suspended policy).
  virtual std::optional<RateProposal> propose(const PolicyInput&) {
    return std::nullopt;
  }
  /// Rewrite the arbitrated target (runs on every round, preempted or not).
  virtual void adjust(const PolicyInput& /*in*/, bool /*preempted*/,
                      int& /*target_hz*/) {}

  /// Stage-specific counters/gauges beyond the pipeline-registered pair.
  virtual void register_obs(obs::ObsSink* /*obs*/) {}
  /// Late wiring for stages that need the actuation plane (recovery).
  virtual void set_recovery_host(RecoveryHost* /*host*/) {}
  /// Called once the owning controller is fully wired; stages that run
  /// their own event series or listeners (self-refresh) register here so
  /// the canonical registration order is preserved.
  virtual void start(sim::Simulator& /*sim*/) {}
  virtual void stop() {}
};

/// One arbitrated decision.
struct PipelineDecision {
  int target_hz = 0;
  /// Maximum over policy-class proposals (the pre-boost/pre-floor policy
  /// decision; drives the section-transition counter).
  int policy_hz = 0;
  bool preempted = false;
};

class PolicyPipeline {
 public:
  PolicyPipeline() = default;
  PolicyPipeline(const PolicyPipeline&) = delete;
  PolicyPipeline& operator=(const PolicyPipeline&) = delete;

  void add_stage(std::unique_ptr<PolicyStage> stage);

  /// Registers policy.<stage>.* counters and forwards the sink to stages.
  /// Call before the first evaluate(); null is fine (no-op).
  void set_obs(obs::ObsSink* obs);
  void bind_recovery_host(RecoveryHost* host);
  void start(sim::Simulator& sim);
  void stop();

  [[nodiscard]] PipelineDecision evaluate(const PolicyInput& in);

  [[nodiscard]] bool has_stage(std::string_view name) const;
  /// First stage with `name`, or null.
  [[nodiscard]] PolicyStage* stage(std::string_view name);
  [[nodiscard]] std::size_t size() const { return stages_.size(); }
  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }

 private:
  std::vector<std::unique_ptr<PolicyStage>> stages_;
  // Reused across ticks so steady-state evaluation never allocates.
  std::vector<RateProposal> proposals_;
  std::vector<std::size_t> owners_;  // proposals_[j] came from stages_[owners_[j]]
  std::uint64_t evaluations_ = 0;

  obs::ObsSink* obs_ = nullptr;
  std::vector<std::uint64_t*> ctr_proposals_;
  std::vector<std::uint64_t*> ctr_wins_;
};

// --- pipeline specs --------------------------------------------------------

/// The user-specifiable stages.  Floor, recovery and self-refresh stages are
/// appended automatically from DpmConfig / DeviceConfig (they are wiring,
/// not policy choices) and have no spec keyword.
enum class StageId {
  kSection,
  kNaive,
  kHysteresis,
  kBoost,
  kPredictive,
  kDvfs,
};

[[nodiscard]] const char* stage_keyword(StageId id);
[[nodiscard]] std::optional<StageId> stage_from_keyword(std::string_view name);

/// An ordered stage composition, as written in configs:
/// `pipeline=section,hysteresis,boost`.
struct PipelineSpec {
  std::vector<StageId> stages;

  [[nodiscard]] bool operator==(const PipelineSpec&) const = default;
  [[nodiscard]] bool empty() const { return stages.empty(); }
  [[nodiscard]] bool contains(StageId id) const;

  /// `section,hysteresis,boost` rendering (config round-trip format).
  [[nodiscard]] std::string to_string() const;

  /// Strict parse + validation: unknown names, duplicates, empty specs, a
  /// spec without a rate source (section/naive/predictive), or a
  /// hysteresis stage with no rate source before it are all rejected.
  /// On failure returns nullopt and sets `*error` (if non-null).
  static std::optional<PipelineSpec> parse(std::string_view text,
                                           std::string* error);

  /// Validation of an already-built spec (same rules as parse).  Returns
  /// the error message, or nullopt when valid.
  [[nodiscard]] std::optional<std::string> validate() const;
};

/// Builds the pipeline for `spec` over the hardware ladder, appending the
/// floor stage when config.min_hz > 0 and the recovery stage when
/// config.recovery.enabled (bind_recovery_host() before evaluating).
[[nodiscard]] std::unique_ptr<PolicyPipeline> build_pipeline(
    const PipelineSpec& spec, const display::RefreshRateSet& rates,
    const DpmConfig& config);

}  // namespace ccdem::core
