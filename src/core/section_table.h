// SectionTable: the predefined content-rate -> refresh-rate mapping
// (paper section 3.2, Equation (1) and Figure 5).
//
// The controller must keep the refresh rate *above* the content rate:
// because of V-Sync the content rate can never be observed above the current
// refresh rate, so a mapping that ratchets down to the measured rate gets
// trapped (the paper's failed first attempt, kept here as NaiveController).
// Equation (1) therefore splits the content-rate axis at the medians between
// adjacent refresh rates, shifted one section up.  For the Galaxy S3 levels
// {20, 24, 30, 40, 60} this reproduces the paper's Figure 5 table exactly:
//
//     content rate        refresh rate
//     [ 0, 10) fps   ->   20 Hz        (10 = median(0, 20))
//     [10, 22) fps   ->   24 Hz        (22 = median(20, 24))
//     [22, 27) fps   ->   30 Hz        (27 = median(24, 30))
//     [27, 35) fps   ->   40 Hz        (35 = median(30, 40))
//     [35, .. ) fps  ->   60 Hz
//
// i.e. rate(c) is the lowest rate r_i whose *lower-neighbour median*
// (r_{i-1} + r_i)/2 exceeds c, with r_{-1} = 0.  The `alpha` knob
// generalises the split point to r_{i-1} + alpha * (r_i - r_{i-1}) for the
// threshold-placement ablation (paper = 0.5; 1.0 = tight/minimal-sufficient,
// 0.0 = loose/maximal headroom).
#pragma once

#include <string>
#include <vector>

#include "display/refresh_rate.h"

namespace ccdem::core {

class SectionTable {
 public:
  struct Section {
    double lo_fps = 0.0;  ///< inclusive
    double hi_fps = 0.0;  ///< exclusive; infinity for the top section
    int refresh_hz = 0;
  };

  /// Builds the table for a rate set.  `alpha` in [0, 1] places each
  /// threshold between the adjacent rates (0.5 = paper's median rule).
  static SectionTable build(const display::RefreshRateSet& rates,
                            double alpha = 0.5);

  /// Refresh rate for a measured content rate.
  [[nodiscard]] int rate_for(double content_fps) const;

  /// Index (into sections()) of the section holding `content_fps`.  Lets
  /// observers count section transitions from a content-rate signal
  /// independently of the controller that acted on it.
  [[nodiscard]] std::size_t section_index_for(double content_fps) const;

  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }

  /// Human-readable rendering of the table (Figure 5 style).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Section> sections_;  // ascending in lo_fps
};

}  // namespace ccdem::core
