#include "core/metering_cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ccdem::core {

MeteringCostModel::MeteringCostModel()
    : MeteringCostModel({{2'304, 0.5},     // 2K (36x64)
                         {4'080, 0.8},     // 4K (48x85)
                         {9'216, 5.0},     // 9K (72x128)
                         {36'864, 9.0},    // 36K (144x256)
                         {921'600, 42.0}}) // full 720x1280
{}

MeteringCostModel::MeteringCostModel(
    std::vector<std::pair<std::int64_t, double>> points)
    : points_(std::move(points)) {
  assert(points_.size() >= 2);
  assert(std::is_sorted(points_.begin(), points_.end(),
                        [](const auto& a, const auto& b) {
                          return a.first < b.first;
                        }));
}

double MeteringCostModel::duration_ms(std::int64_t sample_count) const {
  assert(sample_count > 0);
  const double n = static_cast<double>(sample_count);
  // Clamp to the calibrated range's end slopes rather than extrapolating.
  if (sample_count <= points_.front().first) {
    return points_.front().second *
           (n / static_cast<double>(points_.front().first));
  }
  if (sample_count >= points_.back().first) {
    return points_.back().second *
           (n / static_cast<double>(points_.back().first));
  }
  // Log-log linear interpolation between bracketing calibration points.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (sample_count <= points_[i].first) {
      const double x0 = std::log(static_cast<double>(points_[i - 1].first));
      const double x1 = std::log(static_cast<double>(points_[i].first));
      const double y0 = std::log(points_[i - 1].second);
      const double y1 = std::log(points_[i].second);
      const double t = (std::log(n) - x0) / (x1 - x0);
      return std::exp(y0 + t * (y1 - y0));
    }
  }
  return points_.back().second;  // unreachable
}

bool MeteringCostModel::fits_frame_budget(std::int64_t sample_count,
                                          int refresh_hz) const {
  assert(refresh_hz > 0);
  const double budget_ms = 1000.0 / static_cast<double>(refresh_hz);
  return duration_ms(sample_count) < budget_ms;
}

double MeteringCostModel::energy_mj(std::int64_t sample_count,
                                    double cpu_active_mw) const {
  return duration_ms(sample_count) / 1000.0 * cpu_active_mw;
}

}  // namespace ccdem::core
