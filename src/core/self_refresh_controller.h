// Panel self-refresh (PSR) controller -- an extension beyond the paper.
//
// The section table bottoms out at the panel's lowest rate (20 Hz on the
// Galaxy S3) even when the content rate is exactly zero.  Panels with
// self-refresh RAM can go further: when no frame has been composed for a
// while, the panel refreshes itself from its local buffer and the SoC's
// display pipeline and link power down entirely.  This controller watches
// compositions and toggles the power model's link accordingly; the very
// next composed frame re-activates the link (entering/exiting costs an
// impulse energy, so flapping is penalised).
#pragma once

#include <cstdint>

#include "gfx/surface_flinger.h"
#include "power/device_power_model.h"
#include "sim/simulator.h"

namespace ccdem::core {

struct SelfRefreshConfig {
  /// Idle time (no compositions) before entering self-refresh.
  sim::Duration enter_after = sim::seconds(2);
  sim::Duration eval_period = sim::milliseconds(250);
  /// Link power-down / power-up transition cost.
  double transition_mj = 1.5;
};

class SelfRefreshController final : public gfx::FrameListener {
 public:
  SelfRefreshController(sim::Simulator& sim, gfx::SurfaceFlinger& flinger,
                        power::DevicePowerModel& power,
                        SelfRefreshConfig config = {});

  SelfRefreshController(const SelfRefreshController&) = delete;
  SelfRefreshController& operator=(const SelfRefreshController&) = delete;

  /// FrameListener: any composition exits self-refresh immediately (the
  /// frame must reach the panel) and resets the idle timer.
  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer&) override;

  void stop() { running_ = false; }

  [[nodiscard]] bool in_self_refresh() const { return in_self_refresh_; }
  [[nodiscard]] std::uint64_t entries() const { return entries_; }
  /// Total time spent in self-refresh so far.
  [[nodiscard]] sim::Duration time_in_self_refresh(sim::Time now) const;

 private:
  void evaluate(sim::Time t);
  void enter(sim::Time t);
  void exit(sim::Time t);

  power::DevicePowerModel& power_;
  SelfRefreshConfig config_;
  sim::Time last_frame_{};
  bool in_self_refresh_ = false;
  sim::Time entered_at_{};
  sim::Duration accumulated_{};
  std::uint64_t entries_ = 0;
  bool running_ = true;
};

}  // namespace ccdem::core
