#include "core/frame_rate_governor.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ccdem::core {

FrameRateGovernor::FrameRateGovernor(sim::Simulator& sim,
                                     gfx::SurfaceFlinger& flinger,
                                     std::function<void(double)> set_cap,
                                     power::DevicePowerModel* power,
                                     Config config, gfx::BufferPool* pool,
                                     obs::ObsSink* obs,
                                     const display::DisplayPanel* panel)
    : set_cap_(std::move(set_cap)),
      power_(power),
      panel_(panel),
      config_(config),
      meter_(flinger.screen_size(), config.meter.grid, config.meter.window,
             MeterMode::kSampledSnapshot, pool),
      obs_(obs) {
  assert(set_cap_);
  meter_.set_damage_culling(config_.meter.damage_culling);
  if (obs_ != nullptr) {
    meter_.set_obs(obs_);
    ctr_evaluations_ = &obs_->counters.counter("governor.evaluations");
    ctr_cap_changes_ = &obs_->counters.counter("governor.cap_changes");
  }
  flinger.add_listener(this);
  cap_trace_.record(sim.now(), 0.0);
  sim.every(config_.meter.eval_period, [this](sim::Time t) {
    if (!running_) return false;
    evaluate(t);
    return true;
  });
}

void FrameRateGovernor::on_frame(const gfx::FrameInfo& info,
                                 const gfx::Framebuffer& fb) {
  meter_.on_frame(info, fb);
  if (power_ != nullptr && config_.charge_meter_cost) {
    power_->add_energy_mj(
        info.composed_at,
        meter_.cost_model().energy_mj(
            static_cast<std::int64_t>(meter_.sampler().sample_count()),
            config_.meter_cpu_mw),
        power::EnergyTag::kMeter);
  }
}

void FrameRateGovernor::on_touch(const input::TouchEvent& e) {
  // A late-delivered (fault layer) event must not rewind the hold window.
  last_touch_ = std::max(last_touch_, e.t);
  if (current_cap_ != 0.0) {
    // Release immediately: interaction must not wait for the next tick.
    current_cap_ = 0.0;
    set_cap_(0.0);
    cap_trace_.record(e.t, 0.0);
    if (ctr_cap_changes_ != nullptr) ++*ctr_cap_changes_;
  }
}

void FrameRateGovernor::evaluate(sim::Time t) {
  ++evaluations_;
  double cap;
  if (t <= last_touch_ + config_.interact_hold) {
    cap = 0.0;  // interacting: uncapped
  } else {
    cap = std::max(config_.min_cap_fps,
                   meter_.content_rate(t) * config_.headroom);
  }
  if (panel_ != nullptr && cap > 0.0) {
    // Revalidate against the currently-advertised rates: frames above what
    // the link can present are pure waste.  Only a genuine capability loss
    // narrows the set, so the stock behaviour (cap free to exceed the
    // ladder) is untouched.
    const display::RefreshRateSet& advertised = panel_->advertised_rates();
    const int hw_max = panel_->rates().max_hz();
    if (advertised.max_hz() < hw_max &&
        cap > static_cast<double>(advertised.max_hz())) {
      cap = static_cast<double>(advertised.max_hz());
    }
  }
  if (ctr_evaluations_ != nullptr) ++*ctr_evaluations_;
  if (cap != current_cap_) {
    current_cap_ = cap;
    set_cap_(cap);
    cap_trace_.record(t, cap);
    if (ctr_cap_changes_ != nullptr) ++*ctr_cap_changes_;
  }
  CCDEM_OBS_SPAN(obs_, obs::Phase::kGovern, t, sim::Duration{}, evaluations_,
                 static_cast<std::int64_t>(cap));
}

}  // namespace ccdem::core
