// TouchBooster (paper section 3.2).
//
// Section-based control reacts only as fast as the content rate can climb,
// and V-Sync caps that climb at the current refresh rate -- so a sudden
// interaction burst would drop frames while the controller ramps through the
// sections.  The booster forces the maximum refresh rate the moment a touch
// event arrives, regardless of the measured content rate, and holds it for a
// configurable time after the last event.
#pragma once

#include <cstdint>

#include "input/touch_event.h"
#include "sim/time.h"

namespace ccdem::core {

class TouchBooster final : public input::TouchListener {
 public:
  explicit TouchBooster(sim::Duration hold = sim::seconds(1))
      : hold_(hold) {}

  void on_touch(const input::TouchEvent& e) override {
    if (!active(e.t)) ++activations_;  // window was closed: this opens it
    last_touch_ = e.t;
    touched_ = true;
    ++touch_events_;
  }

  /// True while the boost window after the last touch is open.
  [[nodiscard]] bool active(sim::Time now) const {
    return touched_ && now <= last_touch_ + hold_;
  }

  [[nodiscard]] sim::Duration hold() const { return hold_; }
  void set_hold(sim::Duration hold) { hold_ = hold; }
  [[nodiscard]] std::uint64_t touch_events() const { return touch_events_; }
  /// Closed->open transitions of the boost window (a burst of touches
  /// inside one window counts once).
  [[nodiscard]] std::uint64_t activations() const { return activations_; }

 private:
  sim::Duration hold_;
  sim::Time last_touch_{};
  bool touched_ = false;
  std::uint64_t touch_events_ = 0;
  std::uint64_t activations_ = 0;
};

}  // namespace ccdem::core
