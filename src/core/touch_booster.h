// TouchBooster (paper section 3.2).
//
// Section-based control reacts only as fast as the content rate can climb,
// and V-Sync caps that climb at the current refresh rate -- so a sudden
// interaction burst would drop frames while the controller ramps through the
// sections.  The booster forces the maximum refresh rate the moment a touch
// event arrives, regardless of the measured content rate, and holds it for a
// configurable time after the last event.
#pragma once

#include <algorithm>
#include <cstdint>

#include "input/touch_event.h"
#include "sim/time.h"

namespace ccdem::core {

class TouchBooster final : public input::TouchListener {
 public:
  /// `min_hold`: minimum time the window stays open after the touch that
  /// opened it, regardless of later events.  0 (the default) is the classic
  /// behaviour; a lossy input path (fault layer) sets it so a dropped "up"
  /// event cannot shorten an interaction's boost below a usable floor.
  explicit TouchBooster(sim::Duration hold = sim::seconds(1),
                        sim::Duration min_hold = sim::Duration{})
      : hold_(hold), min_hold_(min_hold) {}

  void on_touch(const input::TouchEvent& e) override {
    if (!active(e.t)) {
      ++activations_;  // window was closed: this opens it
      opened_at_ = e.t;
    }
    // A late-delivered event carries an older timestamp than one already
    // seen; the window edge must never move backwards.
    last_touch_ = std::max(last_touch_, e.t);
    touched_ = true;
    ++touch_events_;
  }

  /// True while the boost window after the last touch is open (or the
  /// opening touch's minimum hold has not elapsed).
  [[nodiscard]] bool active(sim::Time now) const {
    return touched_ &&
           (now <= last_touch_ + hold_ || now <= opened_at_ + min_hold_);
  }

  [[nodiscard]] sim::Duration hold() const { return hold_; }
  void set_hold(sim::Duration hold) { hold_ = hold; }
  [[nodiscard]] sim::Duration min_hold() const { return min_hold_; }
  void set_min_hold(sim::Duration min_hold) { min_hold_ = min_hold; }
  [[nodiscard]] std::uint64_t touch_events() const { return touch_events_; }
  /// Closed->open transitions of the boost window (a burst of touches
  /// inside one window counts once).
  [[nodiscard]] std::uint64_t activations() const { return activations_; }

 private:
  sim::Duration hold_;
  sim::Duration min_hold_;
  sim::Time last_touch_{};
  sim::Time opened_at_{};
  bool touched_ = false;
  std::uint64_t touch_events_ = 0;
  std::uint64_t activations_ = 0;
};

}  // namespace ccdem::core
