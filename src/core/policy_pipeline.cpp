#include "core/policy_pipeline.h"

#include <string>
#include <utility>

#include "core/policy_stages.h"

namespace ccdem::core {

void PolicyPipeline::add_stage(std::unique_ptr<PolicyStage> stage) {
  stages_.push_back(std::move(stage));
  if (obs_ != nullptr) {
    // Stage added after set_obs (the self-refresh overlay): register its
    // counter pair now so the slot vectors stay index-aligned.
    const std::string prefix =
        "policy." + std::string(stages_.back()->name()) + ".";
    ctr_proposals_.push_back(&obs_->counters.counter(prefix + "proposals"));
    ctr_wins_.push_back(&obs_->counters.counter(prefix + "wins"));
    stages_.back()->register_obs(obs_);
  }
}

void PolicyPipeline::set_obs(obs::ObsSink* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  ctr_proposals_.clear();
  ctr_wins_.clear();
  for (const auto& stage : stages_) {
    const std::string prefix = "policy." + std::string(stage->name()) + ".";
    ctr_proposals_.push_back(&obs_->counters.counter(prefix + "proposals"));
    ctr_wins_.push_back(&obs_->counters.counter(prefix + "wins"));
  }
  for (const auto& stage : stages_) stage->register_obs(obs_);
}

void PolicyPipeline::bind_recovery_host(RecoveryHost* host) {
  for (const auto& stage : stages_) stage->set_recovery_host(host);
}

void PolicyPipeline::start(sim::Simulator& sim) {
  for (const auto& stage : stages_) stage->start(sim);
}

void PolicyPipeline::stop() {
  for (const auto& stage : stages_) stage->stop();
}

PipelineDecision PolicyPipeline::evaluate(const PolicyInput& in) {
  PipelineDecision d;
  // Cleared up front so a preempted round never exposes the previous
  // round's proposals through the adjust-phase input below.
  proposals_.clear();
  owners_.clear();

  for (const auto& stage : stages_) {
    if (const std::optional<int> pin = stage->preempt(in)) {
      d.preempted = true;
      d.target_hz = *pin;
      d.policy_hz = *pin;
      break;
    }
  }

  if (!d.preempted) {
    PolicyInput round = in;
    round.upstream = &proposals_;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      if (std::optional<RateProposal> p = stages_[i]->propose(round)) {
        if (obs_ != nullptr) ++*ctr_proposals_[i];
        proposals_.push_back(*p);
        owners_.push_back(i);
      }
    }
    // Arbitration: max priority, then max rate, then earliest stage.
    std::size_t best = proposals_.size();
    for (std::size_t j = 0; j < proposals_.size(); ++j) {
      if (best == proposals_.size() ||
          proposals_[j].priority > proposals_[best].priority ||
          (proposals_[j].priority == proposals_[best].priority &&
           proposals_[j].target_hz > proposals_[best].target_hz)) {
        best = j;
      }
    }
    if (best < proposals_.size()) {
      d.target_hz = proposals_[best].target_hz;
      if (obs_ != nullptr) ++*ctr_wins_[owners_[best]];
    } else {
      // A validated spec always has a rate source, but a hand-built
      // pipeline may not: hold the current rate.
      d.target_hz = in.current_hz;
    }
    d.policy_hz = round.best_policy_hz(in.current_hz);
  }

  // Adjust-phase input carries this round's proposals so safety planes can
  // read the policy's own decision (the ladder's drop-boost rung).
  PolicyInput adj = in;
  adj.upstream = &proposals_;
  for (const auto& stage : stages_) {
    stage->adjust(adj, d.preempted, d.target_hz);
  }

  ++evaluations_;
  CCDEM_OBS_SPAN(obs_, obs::Phase::kArbiter, in.now, sim::Duration{},
                 evaluations_, d.target_hz);
  return d;
}

bool PolicyPipeline::has_stage(std::string_view name) const {
  for (const auto& stage : stages_) {
    if (stage->name() == name) return true;
  }
  return false;
}

PolicyStage* PolicyPipeline::stage(std::string_view name) {
  for (const auto& stage : stages_) {
    if (stage->name() == name) return stage.get();
  }
  return nullptr;
}

// --- pipeline specs --------------------------------------------------------

const char* stage_keyword(StageId id) {
  switch (id) {
    case StageId::kSection: return "section";
    case StageId::kNaive: return "naive";
    case StageId::kHysteresis: return "hysteresis";
    case StageId::kBoost: return "boost";
    case StageId::kPredictive: return "predictive";
    case StageId::kDvfs: return "dvfs";
  }
  return "?";
}

std::optional<StageId> stage_from_keyword(std::string_view name) {
  for (const StageId id :
       {StageId::kSection, StageId::kNaive, StageId::kHysteresis,
        StageId::kBoost, StageId::kPredictive, StageId::kDvfs}) {
    if (name == stage_keyword(id)) return id;
  }
  return std::nullopt;
}

namespace {

bool is_rate_source(StageId id) {
  return id == StageId::kSection || id == StageId::kNaive ||
         id == StageId::kPredictive;
}

}  // namespace

bool PipelineSpec::contains(StageId id) const {
  for (const StageId s : stages) {
    if (s == id) return true;
  }
  return false;
}

std::string PipelineSpec::to_string() const {
  std::string out;
  for (const StageId s : stages) {
    if (!out.empty()) out += ',';
    out += stage_keyword(s);
  }
  return out;
}

std::optional<std::string> PipelineSpec::validate() const {
  if (stages.empty()) return "pipeline spec is empty";
  bool source_seen = false;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (stages[j] == stages[i]) {
        return std::string("duplicate stage '") + stage_keyword(stages[i]) +
               "'";
      }
    }
    if (stages[i] == StageId::kHysteresis && !source_seen) {
      return "hysteresis requires a rate source (section/naive/predictive) "
             "before it";
    }
    if (is_rate_source(stages[i])) source_seen = true;
  }
  if (!source_seen) {
    return "pipeline needs at least one rate source "
           "(section/naive/predictive)";
  }
  return std::nullopt;
}

std::optional<PipelineSpec> PipelineSpec::parse(std::string_view text,
                                                std::string* error) {
  PipelineSpec spec;
  if (text.empty()) {
    if (error != nullptr) *error = "pipeline spec is empty";
    return std::nullopt;
  }
  const auto trim = [](std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
      s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
      s.remove_suffix(1);
    }
    return s;
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view token = trim(
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos));
    const std::optional<StageId> id = stage_from_keyword(token);
    if (!id) {
      if (error != nullptr) {
        *error = "unknown pipeline stage '" + std::string(token) + "'";
      }
      return std::nullopt;
    }
    spec.stages.push_back(*id);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (const std::optional<std::string> err = spec.validate()) {
    if (error != nullptr) *error = *err;
    return std::nullopt;
  }
  return spec;
}

std::unique_ptr<PolicyPipeline> build_pipeline(
    const PipelineSpec& spec, const display::RefreshRateSet& rates,
    const DpmConfig& config) {
  auto pipeline = std::make_unique<PolicyPipeline>();
  for (const StageId id : spec.stages) {
    switch (id) {
      case StageId::kSection:
        pipeline->add_stage(std::make_unique<SectionStage>(
            SectionTable::build(rates, config.section_alpha)));
        break;
      case StageId::kNaive:
        pipeline->add_stage(std::make_unique<NaiveStage>(rates));
        break;
      case StageId::kHysteresis:
        pipeline->add_stage(std::make_unique<HysteresisStage>(
            config.hysteresis_down_confirmations));
        break;
      case StageId::kBoost:
        pipeline->add_stage(std::make_unique<BoostStage>(config.boost_hz));
        break;
      case StageId::kPredictive:
        pipeline->add_stage(std::make_unique<PredictiveRateStage>(
            SectionTable::build(rates, config.section_alpha),
            config.predictive));
        break;
      case StageId::kDvfs:
        pipeline->add_stage(std::make_unique<DvfsCoControlStage>(
            config.dvfs, config.min_hz));
        break;
    }
  }
  if (config.min_hz > 0) {
    pipeline->add_stage(std::make_unique<FloorStage>(config.min_hz));
  }
  if (config.recovery.enabled) {
    pipeline->add_stage(std::make_unique<RecoveryStage>(config.recovery));
  }
  if (config.ladder.enabled) {
    // Last on purpose: the ladder caps whatever every other plane decided,
    // and on pin ties the recovery plane (earlier) wins.
    pipeline->add_stage(std::make_unique<DegradationLadderStage>(config.ladder));
  }
  return pipeline;
}

}  // namespace ccdem::core
