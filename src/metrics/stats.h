// Streaming and batch statistics used by the evaluation harness.
#pragma once

#include <cstddef>
#include <vector>

namespace ccdem::metrics {

/// Welford's online mean/variance accumulator.
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample standard deviation (n-1 denominator); 0 with fewer than 2 points.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return n_ == 0 ? 0.0 : mean_ * n_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (p in [0, 100]) by linear interpolation between order
/// statistics.  Returns 0 for an empty input.  Copies and sorts.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// The paper's "for 80 % of applications, X is at least/at most V" style
/// statement: the value V such that 80 % of inputs are <= V (the 80th
/// percentile) -- used by Figs. 9-11.
[[nodiscard]] inline double value_at_80th(std::vector<double> values) {
  return percentile(std::move(values), 80.0);
}

}  // namespace ccdem::metrics
