// FrameStatsRecorder: the harness's ground-truth observer.
//
// Listens to compositions and builds per-second frame-rate and content-rate
// traces from the compositor's exact changed-pixel flag.  In the 60 Hz
// baseline run this yields the *actual* content rate the paper compares
// against (section 4.4: "we compared the content rate of the proposed
// system with the actual content rate"); in a controlled run it yields the
// *delivered* content rate.
#pragma once

#include <cstdint>

#include "gfx/surface_flinger.h"
#include "obs/obs.h"
#include "sim/trace.h"

namespace ccdem::metrics {

class FrameStatsRecorder final : public gfx::FrameListener {
 public:
  explicit FrameStatsRecorder(sim::Duration bucket = sim::seconds(1));

  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer&) override;

  /// Publishes recorder.* counters into `sink` (nullptr detaches).  The
  /// recorder's exact-pixel counts cross-validate the flinger.* counters.
  void set_obs(obs::ObsSink* sink);

  /// Closes the current bucket; call once at the end of the run so the last
  /// partial second is flushed (scaled to a rate).
  void finish(sim::Time end);

  /// Frames composed per second over time.
  [[nodiscard]] const sim::Trace& frame_rate() const { return frame_rate_; }
  /// Content (meaningful) frames per second over time.
  [[nodiscard]] const sim::Trace& content_rate() const {
    return content_rate_;
  }

  [[nodiscard]] std::uint64_t total_frames() const { return total_frames_; }
  [[nodiscard]] std::uint64_t total_content_frames() const {
    return total_content_;
  }
  [[nodiscard]] std::uint64_t total_redundant_frames() const {
    return total_frames_ - total_content_;
  }

 private:
  void roll_to(sim::Time t);

  sim::Duration bucket_;
  sim::Time bucket_start_{};
  bool first_ = true;
  std::uint64_t bucket_frames_ = 0;
  std::uint64_t bucket_content_ = 0;
  std::uint64_t total_frames_ = 0;
  std::uint64_t total_content_ = 0;
  sim::Trace frame_rate_{"frame_rate_fps"};
  sim::Trace content_rate_{"content_rate_fps"};

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_frames_ = nullptr;
  std::uint64_t* ctr_content_ = nullptr;
};

}  // namespace ccdem::metrics
