// Touch-response latency: how long after a touch the first *content* frame
// reaches the screen.
//
// The paper argues touch boosting protects quality via dropped-frame counts
// and the content-rate ratio; response latency is the complementary UX
// metric -- a panel parked at 20 Hz adds up to 50 ms before the first
// reaction frame can even scan out, which users feel as sluggishness.  The
// recorder pairs every touch-down with the next content frame and reports
// the latency distribution.
#pragma once

#include <optional>
#include <vector>

#include "gfx/surface_flinger.h"
#include "input/touch_event.h"
#include "sim/time.h"

namespace ccdem::metrics {

class ResponseLatencyRecorder final : public gfx::FrameListener,
                                      public input::TouchListener {
 public:
  /// Touches within `ignore_window` of a previous one are treated as part
  /// of the same interaction (only the first down of a burst is paired).
  explicit ResponseLatencyRecorder(
      sim::Duration ignore_window = sim::milliseconds(300));

  void on_touch(const input::TouchEvent& e) override;
  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer&) override;

  /// Latencies of every paired interaction, in milliseconds.
  [[nodiscard]] const std::vector<double>& latencies_ms() const {
    return latencies_ms_;
  }
  [[nodiscard]] std::size_t interactions() const { return interactions_; }
  [[nodiscard]] double mean_ms() const;
  [[nodiscard]] double max_ms() const;
  /// p in [0, 100].
  [[nodiscard]] double percentile_ms(double p) const;

 private:
  sim::Duration ignore_window_;
  std::optional<sim::Time> pending_touch_;
  sim::Time last_down_{sim::Time{} - sim::seconds(3600)};
  std::vector<double> latencies_ms_;
  std::size_t interactions_ = 0;
};

}  // namespace ccdem::metrics
