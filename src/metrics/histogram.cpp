#include "metrics/histogram.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace ccdem::metrics {

Histogram::Histogram(double lo, double hi, std::size_t bucket_count)
    : lo_(lo), hi_(hi), counts_(bucket_count, 0) {
  assert(hi > lo);
  assert(bucket_count >= 1);
}

void Histogram::add(double value) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::int64_t>((value - lo_) / span *
                                       static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(
      idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket + 1);
}

double Histogram::fraction_below(double value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bucket_hi(b) <= value) below += counts_[b];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::render(int width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const int bar = static_cast<int>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) * width);
    os << "[" << std::setw(8) << bucket_lo(b) << ", " << std::setw(8)
       << bucket_hi(b) << ") |"
       << std::string(static_cast<std::size_t>(bar), '#')
       << std::string(static_cast<std::size_t>(width - bar), ' ') << "| "
       << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace ccdem::metrics
