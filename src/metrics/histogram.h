// Fixed-bucket histogram with ASCII rendering.
//
// Used by the evaluation benches to show distributions (per-app savings,
// dropped-frame rates) the way the paper's bar charts do, without plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccdem::metrics {

class Histogram {
 public:
  /// Buckets span [lo, hi) uniformly; values outside clamp into the first /
  /// last bucket.  Requires hi > lo and bucket_count >= 1.
  Histogram(double lo, double hi, std::size_t bucket_count);

  void add(double value);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const {
    return counts_[bucket];
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// Fraction of samples in buckets whose upper edge is <= value.
  [[nodiscard]] double fraction_below(double value) const;

  /// Multi-line ASCII bar rendering, one line per bucket.
  [[nodiscard]] std::string render(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ccdem::metrics
