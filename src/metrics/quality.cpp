#include "metrics/quality.h"

#include <algorithm>

namespace ccdem::metrics {

QualityReport compare_quality(const sim::Trace& actual,
                              const sim::Trace& delivered) {
  QualityReport r;
  if (actual.empty() || delivered.empty()) return r;

  const sim::Time begin{
      std::max(actual.points().front().t.ticks,
               delivered.points().front().t.ticks)};
  const sim::Time end{std::min(actual.points().back().t.ticks,
                               delivered.points().back().t.ticks) +
                      sim::kTicksPerSecond};
  if (end <= begin) return r;

  const sim::Trace a = actual.resample(sim::seconds(1), begin, end);
  const sim::Trace d = delivered.resample(sim::seconds(1), begin, end);

  double sum_a = 0.0, sum_d = 0.0, sum_drop = 0.0;
  const std::size_t n = std::min(a.size(), d.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double av = a.points()[i].value;
    const double dv = d.points()[i].value;
    sum_a += av;
    sum_d += dv;
    sum_drop += std::max(0.0, av - dv);
  }
  if (n == 0) return r;
  r.actual_content_fps = sum_a / static_cast<double>(n);
  r.delivered_content_fps = sum_d / static_cast<double>(n);
  r.dropped_fps = sum_drop / static_cast<double>(n);
  r.display_quality_pct =
      r.actual_content_fps <= 0.0
          ? 100.0
          : std::min(100.0, r.delivered_content_fps / r.actual_content_fps *
                                100.0);
  return r;
}

}  // namespace ccdem::metrics
