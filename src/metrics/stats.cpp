#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace ccdem::metrics {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace ccdem::metrics
