#include "metrics/frame_stats_recorder.h"

#include <cassert>

namespace ccdem::metrics {

FrameStatsRecorder::FrameStatsRecorder(sim::Duration bucket)
    : bucket_(bucket) {
  assert(bucket.ticks > 0);
}

void FrameStatsRecorder::roll_to(sim::Time t) {
  if (first_) {
    bucket_start_ = sim::Time{(t.ticks / bucket_.ticks) * bucket_.ticks};
    first_ = false;
    return;
  }
  while (t >= bucket_start_ + bucket_) {
    const double scale = 1.0 / bucket_.seconds();
    frame_rate_.record(bucket_start_,
                       static_cast<double>(bucket_frames_) * scale);
    content_rate_.record(bucket_start_,
                         static_cast<double>(bucket_content_) * scale);
    bucket_frames_ = 0;
    bucket_content_ = 0;
    bucket_start_ += bucket_;
  }
}

void FrameStatsRecorder::set_obs(obs::ObsSink* sink) {
  obs_ = sink;
  if (obs_ != nullptr) {
    ctr_frames_ = &obs_->counters.counter("recorder.frames");
    ctr_content_ = &obs_->counters.counter("recorder.content_frames");
  } else {
    ctr_frames_ = nullptr;
    ctr_content_ = nullptr;
  }
}

void FrameStatsRecorder::on_frame(const gfx::FrameInfo& info,
                                  const gfx::Framebuffer&) {
  roll_to(info.composed_at);
  ++bucket_frames_;
  ++total_frames_;
  if (ctr_frames_ != nullptr) ++*ctr_frames_;
  if (info.content_changed) {
    ++bucket_content_;
    ++total_content_;
    if (ctr_content_ != nullptr) ++*ctr_content_;
  }
}

void FrameStatsRecorder::finish(sim::Time end) {
  if (first_) return;
  roll_to(end);
  // Flush the final partial bucket, scaled to a rate over its actual span.
  const double span_s = (end - bucket_start_).seconds();
  if (span_s > 0.05) {  // ignore slivers that would produce noisy rates
    frame_rate_.record(bucket_start_,
                       static_cast<double>(bucket_frames_) / span_s);
    content_rate_.record(bucket_start_,
                         static_cast<double>(bucket_content_) / span_s);
  }
  bucket_frames_ = 0;
  bucket_content_ = 0;
}

}  // namespace ccdem::metrics
