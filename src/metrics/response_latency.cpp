#include "metrics/response_latency.h"

#include <algorithm>

#include "metrics/stats.h"

namespace ccdem::metrics {

ResponseLatencyRecorder::ResponseLatencyRecorder(sim::Duration ignore_window)
    : ignore_window_(ignore_window) {}

void ResponseLatencyRecorder::on_touch(const input::TouchEvent& e) {
  if (e.action != input::TouchEvent::Action::kDown) return;
  if (e.t <= last_down_ + ignore_window_) {
    last_down_ = e.t;
    return;  // same interaction burst
  }
  last_down_ = e.t;
  ++interactions_;
  pending_touch_ = e.t;
}

void ResponseLatencyRecorder::on_frame(const gfx::FrameInfo& info,
                                       const gfx::Framebuffer&) {
  if (!pending_touch_.has_value() || !info.content_changed) return;
  if (info.composed_at < *pending_touch_) return;
  latencies_ms_.push_back((info.composed_at - *pending_touch_).milliseconds());
  pending_touch_.reset();
}

double ResponseLatencyRecorder::mean_ms() const {
  if (latencies_ms_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : latencies_ms_) sum += v;
  return sum / static_cast<double>(latencies_ms_.size());
}

double ResponseLatencyRecorder::max_ms() const {
  double m = 0.0;
  for (double v : latencies_ms_) m = std::max(m, v);
  return m;
}

double ResponseLatencyRecorder::percentile_ms(double p) const {
  return percentile(latencies_ms_, p);
}

}  // namespace ccdem::metrics
