// Display-quality metrics (paper section 4.4).
//
// With refresh-rate control, quality degrades when the system delivers
// fewer meaningful frames than the app would have shown at a fixed 60 Hz.
// The paper quantifies this two ways:
//  * dropped frames per second: actual content rate minus delivered content
//    rate (clamped at zero), averaged over the run (Fig. 10's discussion),
//  * display quality: delivered content rate divided by actual content
//    rate, as a percentage (Fig. 11, Table 1).
#pragma once

#include "sim/trace.h"

namespace ccdem::metrics {

struct QualityReport {
  double actual_content_fps = 0.0;     ///< mean, 60 Hz baseline run
  double delivered_content_fps = 0.0;  ///< mean, controlled run
  double dropped_fps = 0.0;            ///< mean of per-second shortfall
  double display_quality_pct = 0.0;    ///< delivered / actual * 100, capped
};

/// Compares per-second content-rate traces of a baseline and a controlled
/// run.  The traces are aligned by resampling both onto a 1 s grid spanning
/// the overlap of their domains.
[[nodiscard]] QualityReport compare_quality(const sim::Trace& actual,
                                            const sim::Trace& delivered);

}  // namespace ccdem::metrics
