// The simulation loop: owns the event queue and the notion of "now".
//
// Components hold a reference to the Simulator and schedule their own
// callbacks (vsync ticks, controller evaluations, input events, meter
// samples).  `run_until` drains events in time order up to a horizon.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace ccdem::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` at an absolute time.
  EventHandle at(Time t, EventQueue::Callback cb) {
    return queue_.schedule_at(t, std::move(cb));
  }

  /// Schedules `cb` after a relative delay from now.
  EventHandle after(Duration d, EventQueue::Callback cb) {
    return queue_.schedule_at(now_ + d, std::move(cb));
  }

  /// Schedules `cb` every `period`, starting one period from now.  The
  /// callback may cancel the series via the returned handle of the *next*
  /// occurrence; more simply, return false from `cb` to stop.
  void every(Duration period, std::function<bool(Time)> cb);

  bool cancel(EventHandle h) { return queue_.cancel(h); }

  /// Runs all events with time <= horizon.  Events scheduled during the run
  /// are processed if they also fall within the horizon.  Advances now() to
  /// the horizon even if the queue drains early.
  void run_until(Time horizon);

  /// Convenience: runs for a span from the current time.
  void run_for(Duration d) { run_until(now_ + d); }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_{};
};

}  // namespace ccdem::sim
