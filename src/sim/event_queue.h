// Discrete-event core: a time-ordered queue of callbacks.
//
// Ties are broken by insertion sequence number so that two events scheduled
// for the same tick fire in the order they were scheduled -- this keeps the
// vsync -> compose -> meter -> control pipeline deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ccdem::sim {

/// Handle used to cancel a scheduled event.  Default-constructed handles are
/// invalid and cancelling them is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void(Time)>;

  /// Schedules `cb` to run at absolute time `at`.  Events in the past
  /// (relative to the last popped event) are clamped to "now".
  EventHandle schedule_at(Time at, Callback cb);

  /// Cancels a scheduled event.  Returns true if the event was still pending.
  /// Cancelling a fired or already-cancelled event is a harmless no-op.
  bool cancel(EventHandle h);

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest pending event.  Requires !empty().
  [[nodiscard]] Time next_time() const;

  /// Pops and runs the earliest pending event.  Requires !empty().
  /// Returns the time at which the event ran.
  Time run_next();

 private:
  struct Entry {
    Time at;
    std::uint64_t id;  // doubles as the FIFO tiebreaker: ids are monotonic
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  /// Drops cancelled entries from the head of the heap.
  void skip_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;  // scheduled, not fired/cancelled
  std::uint64_t next_id_ = 1;
  Time last_popped_{};
};

}  // namespace ccdem::sim
