#include "sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

namespace ccdem::sim {

void Simulator::every(Duration period, std::function<bool(Time)> cb) {
  assert(period.ticks > 0);
  // Self-rescheduling wrapper.  Holds the user callback by shared_ptr so the
  // lambda stays copyable for std::function.
  auto fn = std::make_shared<std::function<bool(Time)>>(std::move(cb));
  struct Repeater {
    Simulator* sim;
    Duration period;
    std::shared_ptr<std::function<bool(Time)>> fn;
    void operator()(Time t) const {
      if ((*fn)(t)) {
        sim->at(t + period, Repeater{sim, period, fn});
      }
    }
  };
  at(now_ + period, Repeater{this, period, std::move(fn)});
}

void Simulator::run_until(Time horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    // Advance "now" before dispatch so callbacks observe the event time.
    now_ = queue_.next_time();
    queue_.run_next();
  }
  if (horizon > now_) now_ = horizon;
}

}  // namespace ccdem::sim
