#include "sim/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ccdem::sim {

void Trace::record(Time t, double value) {
  assert(points_.empty() || points_.back().t <= t);
  points_.push_back({t, value});
}

double Trace::mean() const {
  if (points_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : points_) sum += p.value;
  return sum / static_cast<double>(points_.size());
}

double Trace::stddev() const {
  if (points_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const auto& p : points_) acc += (p.value - m) * (p.value - m);
  return std::sqrt(acc / static_cast<double>(points_.size() - 1));
}

double Trace::min() const {
  double v = std::numeric_limits<double>::infinity();
  for (const auto& p : points_) v = std::min(v, p.value);
  return points_.empty() ? 0.0 : v;
}

double Trace::max() const {
  double v = -std::numeric_limits<double>::infinity();
  for (const auto& p : points_) v = std::max(v, p.value);
  return points_.empty() ? 0.0 : v;
}

double Trace::mean_between(Time begin, Time end) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : points_) {
    if (p.t >= begin && p.t < end) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double Trace::value_at(Time t, double fallback) const {
  // Points are time-ordered; find the last one at or before t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Time lhs, const TracePoint& rhs) { return lhs < rhs.t; });
  if (it == points_.begin()) return fallback;
  return std::prev(it)->value;
}

double Trace::time_weighted_mean(Time begin, Time end) const {
  if (points_.empty() || end <= begin) return 0.0;
  double weighted = 0.0;
  Time cursor = begin;
  double current = points_.front().value;
  for (const auto& p : points_) {
    if (p.t <= cursor) {
      current = p.value;
      continue;
    }
    const Time upto = std::min(p.t, end);
    if (upto > cursor) {
      weighted += current * (upto - cursor).seconds();
      cursor = upto;
    }
    if (p.t >= end) break;
    current = p.value;
  }
  if (cursor < end) weighted += current * (end - cursor).seconds();
  return weighted / (end - begin).seconds();
}

Trace Trace::resample(Duration interval, Time begin, Time end) const {
  assert(interval.ticks > 0);
  Trace out(name_);
  double held = 0.0;
  bool have_held = false;
  auto it = points_.begin();
  // Skip points before the window but remember the last one for step-hold.
  while (it != points_.end() && it->t < begin) {
    held = it->value;
    have_held = true;
    ++it;
  }
  for (Time bucket = begin; bucket < end; bucket += interval) {
    const Time bucket_end = bucket + interval;
    double sum = 0.0;
    std::size_t n = 0;
    while (it != points_.end() && it->t < bucket_end) {
      sum += it->value;
      ++n;
      ++it;
    }
    if (n > 0) {
      held = sum / static_cast<double>(n);
      have_held = true;
    }
    out.record(bucket, have_held ? held : 0.0);
  }
  return out;
}

Trace Trace::difference(const Trace& a, const Trace& b, std::string name) {
  assert(a.size() == b.size());
  Trace out(std::move(name));
  for (std::size_t i = 0; i < a.points_.size(); ++i) {
    assert(a.points_[i].t == b.points_[i].t);
    out.record(a.points_[i].t, a.points_[i].value - b.points_[i].value);
  }
  return out;
}

}  // namespace ccdem::sim
