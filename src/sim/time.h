// Simulation time: a fixed-point microsecond tick counter.
//
// All components of the simulated device (display panel, compositor, input
// pipeline, power meter) share one clock domain.  Using integral microseconds
// instead of floating-point seconds keeps V-Sync cadences exact: a 60 Hz
// period is 16'666 us + a correction scheme (see display::DisplayPanel), and
// event ordering is total and reproducible across runs.
#pragma once

#include <cstdint>
#include <compare>

namespace ccdem::sim {

/// One tick is one simulated microsecond.
using Tick = std::int64_t;

constexpr Tick kTicksPerMicrosecond = 1;
constexpr Tick kTicksPerMillisecond = 1'000;
constexpr Tick kTicksPerSecond = 1'000'000;

/// A point in simulated time, measured in ticks since simulation start.
struct Time {
  Tick ticks = 0;

  constexpr auto operator<=>(const Time&) const = default;

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ticks) / static_cast<double>(kTicksPerSecond);
  }
  [[nodiscard]] constexpr double milliseconds() const {
    return static_cast<double>(ticks) /
           static_cast<double>(kTicksPerMillisecond);
  }
};

/// A span of simulated time.
struct Duration {
  Tick ticks = 0;

  constexpr auto operator<=>(const Duration&) const = default;

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ticks) / static_cast<double>(kTicksPerSecond);
  }
  [[nodiscard]] constexpr double milliseconds() const {
    return static_cast<double>(ticks) /
           static_cast<double>(kTicksPerMillisecond);
  }
};

constexpr Duration microseconds(std::int64_t us) { return Duration{us}; }
constexpr Duration milliseconds(std::int64_t ms) {
  return Duration{ms * kTicksPerMillisecond};
}
constexpr Duration seconds(std::int64_t s) {
  return Duration{s * kTicksPerSecond};
}
/// Converts a (possibly fractional) second count; rounds to nearest tick.
constexpr Duration seconds_f(double s) {
  return Duration{static_cast<Tick>(s * static_cast<double>(kTicksPerSecond) +
                                    (s >= 0 ? 0.5 : -0.5))};
}

/// The absolute time `s` (possibly fractional) seconds after simulation
/// start; rounds to the nearest tick.
constexpr Time at_seconds(double s) {
  return Time{seconds_f(s).ticks};
}

/// Period of an event that repeats `hz` times per second, rounded to the
/// nearest tick.  hz must be positive.
constexpr Duration period_of_hz(double hz) {
  return Duration{
      static_cast<Tick>(static_cast<double>(kTicksPerSecond) / hz + 0.5)};
}

constexpr Time operator+(Time t, Duration d) { return Time{t.ticks + d.ticks}; }
constexpr Time operator-(Time t, Duration d) { return Time{t.ticks - d.ticks}; }
constexpr Duration operator-(Time a, Time b) {
  return Duration{a.ticks - b.ticks};
}
constexpr Duration operator+(Duration a, Duration b) {
  return Duration{a.ticks + b.ticks};
}
constexpr Duration operator-(Duration a, Duration b) {
  return Duration{a.ticks - b.ticks};
}
constexpr Duration operator*(Duration d, std::int64_t k) {
  return Duration{d.ticks * k};
}
constexpr Duration operator/(Duration d, std::int64_t k) {
  return Duration{d.ticks / k};
}
constexpr Time& operator+=(Time& t, Duration d) {
  t.ticks += d.ticks;
  return t;
}

}  // namespace ccdem::sim
