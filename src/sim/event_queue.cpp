#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ccdem::sim {

EventHandle EventQueue::schedule_at(Time at, Callback cb) {
  assert(cb);
  const Time when = std::max(at, last_popped_);
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{when, id, std::move(cb)});
  pending_.insert(id);
  return EventHandle(id);
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // Ids are unique and never reused, so erasing from `pending_` is the whole
  // cancellation; the heap entry is lazily dropped when it surfaces.
  return pending_.erase(h.id_) > 0;
}

Time EventQueue::next_time() const {
  skip_dead();
  assert(!heap_.empty());
  return heap_.top().at;
}

Time EventQueue::run_next() {
  skip_dead();
  assert(!heap_.empty());
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(e.id);
  last_popped_ = e.at;
  e.cb(e.at);
  return e.at;
}

void EventQueue::skip_dead() const {
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() &&
         self->pending_.find(self->heap_.top().id) == self->pending_.end()) {
    self->heap_.pop();
  }
}

}  // namespace ccdem::sim
