#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ccdem::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the parent seed with the stream id through SplitMix so sibling
  // streams are decorrelated even for adjacent ids.
  SplitMix64 sm(seed_ ^ (0xa5a5a5a5a5a5a5a5ULL + stream_id * 0x9e3779b9ULL));
  return Rng(sm.next());
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v > limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

}  // namespace ccdem::sim
