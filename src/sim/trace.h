// Time-series trace recording.
//
// Experiments record sampled signals (frame rate, content rate, refresh
// rate, power) as (time, value) pairs.  Trace supports the reductions the
// paper's figures need: per-second resampling, means over windows, and
// elementwise differences between two traces (e.g. "saved power" in Fig. 8
// is baseline-power minus proposed-power at matching timestamps).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ccdem::sim {

struct TracePoint {
  Time t;
  double value = 0.0;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void record(Time t, double value);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<TracePoint>& points() const {
    return points_;
  }

  /// Mean of all recorded values (0 if empty).
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (0 if fewer than two points).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Mean over points with begin <= t < end.
  [[nodiscard]] double mean_between(Time begin, Time end) const;

  /// Value of the last point at or before `t`; `fallback` if none.
  /// Suits step signals such as the refresh rate.
  [[nodiscard]] double value_at(Time t, double fallback = 0.0) const;

  /// Interprets the trace as a step signal (each point holds until the next)
  /// and returns its time-weighted mean over [begin, end).  Time before the
  /// first point is weighted with the first point's value.
  [[nodiscard]] double time_weighted_mean(Time begin, Time end) const;

  /// Resamples to a fixed-interval series: the mean of all points in each
  /// [k*interval, (k+1)*interval) bucket.  Empty buckets carry the previous
  /// bucket's value (step-hold) so traces of different cadences align.
  [[nodiscard]] Trace resample(Duration interval, Time begin, Time end) const;

  /// Pointwise a - b over two traces already on a common grid (same size,
  /// matching timestamps).  Aborts in debug builds on a mismatch.
  [[nodiscard]] static Trace difference(const Trace& a, const Trace& b,
                                        std::string name = "diff");

 private:
  std::string name_;
  std::vector<TracePoint> points_;
};

}  // namespace ccdem::sim
