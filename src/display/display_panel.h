// DisplayPanel: the V-Sync source and scan-out model.
//
// The panel ticks at its current refresh rate; each tick is a V-Sync that
// drives, in phase order, (1) application rendering, (2) composition, and
// (3) scan-out observers (power model, trace recorders).  Runtime refresh
// rate changes -- the capability the paper obtained via a kernel patch --
// take effect from the next V-Sync boundary, which matches how a panel's
// timing generator reprograms.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "display/refresh_rate.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ccdem::display {

/// V-Sync delivery phases; lower phases run first within one vsync tick.
enum class VsyncPhase {
  kApp = 0,       ///< choreographer callbacks: apps render + post
  kComposer = 1,  ///< SurfaceFlinger latches and composes
  kScanout = 2,   ///< panel consumes the framebuffer; metrics and power
};

class VsyncObserver {
 public:
  virtual ~VsyncObserver() = default;
  virtual void on_vsync(sim::Time t, int refresh_hz) = 0;
};

class DisplayPanel {
 public:
  /// Starts ticking immediately: the first V-Sync fires at sim.now().
  DisplayPanel(sim::Simulator& sim, RefreshRateSet rates, int initial_hz);

  DisplayPanel(const DisplayPanel&) = delete;
  DisplayPanel& operator=(const DisplayPanel&) = delete;

  [[nodiscard]] const RefreshRateSet& rates() const { return rates_; }
  [[nodiscard]] int refresh_hz() const { return refresh_hz_; }
  [[nodiscard]] std::uint64_t vsync_count() const { return vsync_count_; }

  void add_observer(VsyncPhase phase, VsyncObserver* obs);

  /// Callback invoked whenever the effective refresh rate changes; receives
  /// the change time and the new rate.  Used by the power model and traces.
  void add_rate_listener(std::function<void(sim::Time, int)> cb);

  /// Requests a refresh rate change; `hz` must be a supported level.
  /// Takes effect at the next V-Sync boundary.  Returns true if the target
  /// differs from the current pending rate.
  bool set_refresh_rate(int hz);

  /// Fast rate-up ("fast exit"): when enabled, an *increase* reschedules the
  /// next V-Sync to one new-rate period after the last tick instead of
  /// waiting out the old (long) period.  The Galaxy S3's kernel-patched
  /// panel switches only on boundaries (the default); LTPO-class panels
  /// exit low-rate states early, which matters when the floor is 1-10 Hz.
  void set_fast_rate_up(bool on) { fast_rate_up_ = on; }
  [[nodiscard]] bool fast_rate_up() const { return fast_rate_up_; }

  /// Stops the vsync series (used when tearing down an experiment early).
  void stop();

 private:
  void tick(sim::Time t);

  sim::Simulator& sim_;
  RefreshRateSet rates_;
  int refresh_hz_;          // rate in effect for the current period
  int pending_hz_;          // rate requested for the next period
  bool running_ = true;
  bool fast_rate_up_ = false;
  sim::EventHandle next_tick_;
  sim::Time last_tick_{};
  std::uint64_t vsync_count_ = 0;
  std::vector<VsyncObserver*> observers_[3];
  std::vector<std::function<void(sim::Time, int)>> rate_listeners_;
};

}  // namespace ccdem::display
