// DisplayPanel: the V-Sync source and scan-out model.
//
// The panel ticks at its current refresh rate; each tick is a V-Sync that
// drives, in phase order, (1) application rendering, (2) composition, and
// (3) scan-out observers (power model, trace recorders).  Runtime refresh
// rate changes -- the capability the paper obtained via a kernel patch --
// take effect from the next V-Sync boundary, which matches how a panel's
// timing generator reprograms.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "display/refresh_rate.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ccdem::display {

/// V-Sync delivery phases; lower phases run first within one vsync tick.
enum class VsyncPhase {
  kApp = 0,       ///< choreographer callbacks: apps render + post
  kComposer = 1,  ///< SurfaceFlinger latches and composes
  kScanout = 2,   ///< panel consumes the framebuffer; metrics and power
};

class VsyncObserver {
 public:
  virtual ~VsyncObserver() = default;
  virtual void on_vsync(sim::Time t, int refresh_hz) = 0;
};

/// Models the DDIC's reaction to a switch request (fault layer).  The
/// default -- no interceptor installed -- is the paper's kernel-patched
/// panel: every request is acknowledged and lands at the next boundary.
class SwitchInterceptor {
 public:
  struct Decision {
    bool ack = true;        ///< false: the DDIC refuses the request
    sim::Duration settle{}; ///< extra time before the switch may land
  };
  virtual ~SwitchInterceptor() = default;
  virtual Decision on_switch_request(sim::Time t, int from_hz, int to_hz) = 0;
};

/// Models panel-side vsync delivery faults -- jitter/deadline-miss storms
/// (fault layer).  Consulted once per tick before the observers run; the
/// default -- no hook installed -- delivers every vsync on time.  A dropped
/// vsync never reaches the observers and does not count (downstream
/// watchdogs see the stall, exactly as a missed scan-out deadline looks); a
/// delayed one is delivered late within the same period, cadence unchanged.
class VsyncFaultHook {
 public:
  struct Verdict {
    bool drop = false;      ///< the frame never reaches the observers
    sim::Duration delay{};  ///< late delivery (clamped below the period)
  };
  virtual ~VsyncFaultHook() = default;
  virtual Verdict on_vsync_tick(sim::Time t, int refresh_hz) = 0;
};

/// Outcome of a switch request.  Converts to bool as "the pending rate
/// moved" -- exactly what set_refresh_rate() used to return -- so existing
/// call sites keep working; `nacked` distinguishes a DDIC refusal from a
/// redundant request for the self-healing controller.
struct SwitchResult {
  bool changed = false;
  bool nacked = false;
  explicit operator bool() const { return changed; }
};

class DisplayPanel {
 public:
  /// Starts ticking immediately: the first V-Sync fires at sim.now().
  DisplayPanel(sim::Simulator& sim, RefreshRateSet rates, int initial_hz);

  DisplayPanel(const DisplayPanel&) = delete;
  DisplayPanel& operator=(const DisplayPanel&) = delete;

  [[nodiscard]] const RefreshRateSet& rates() const { return rates_; }
  [[nodiscard]] int refresh_hz() const { return refresh_hz_; }
  [[nodiscard]] std::uint64_t vsync_count() const { return vsync_count_; }

  /// The rates the DDIC currently advertises as switchable-to.  Equals
  /// rates() unless a transient capability loss (fault layer) revoked some;
  /// controllers revalidate targets against this set.
  [[nodiscard]] const RefreshRateSet& advertised_rates() const {
    return advertised_;
  }
  /// Marks a supported rate (un)available for new switch requests; the
  /// current rate keeps scanning out regardless.  At least one rate must
  /// stay advertised.
  void set_rate_advertised(int hz, bool advertised);

  void add_observer(VsyncPhase phase, VsyncObserver* obs);

  /// Callback invoked whenever the effective refresh rate changes; receives
  /// the change time and the new rate.  Used by the power model and traces.
  void add_rate_listener(std::function<void(sim::Time, int)> cb);

  /// Interposes on switch requests (fault layer); null restores the
  /// perfectly reliable default.  Not owned; must outlive the panel's use.
  void set_switch_interceptor(SwitchInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// Interposes on vsync delivery (fault layer); null restores on-time
  /// delivery.  Not owned; must outlive the panel's use.
  void set_vsync_fault_hook(VsyncFaultHook* hook) { vsync_hook_ = hook; }

  /// Requests a refresh rate change; `hz` must be a supported level.
  /// Takes effect at the next V-Sync boundary (later if an interceptor adds
  /// settle time).  `changed` is true if the target differs from the
  /// current pending rate; `nacked` if an interceptor refused it.
  SwitchResult set_refresh_rate(int hz);

  /// Fast rate-up ("fast exit"): when enabled, an *increase* reschedules the
  /// next V-Sync to one new-rate period after the last tick instead of
  /// waiting out the old (long) period.  The Galaxy S3's kernel-patched
  /// panel switches only on boundaries (the default); LTPO-class panels
  /// exit low-rate states early, which matters when the floor is 1-10 Hz.
  void set_fast_rate_up(bool on) { fast_rate_up_ = on; }
  [[nodiscard]] bool fast_rate_up() const { return fast_rate_up_; }

  /// Stops the vsync series (used when tearing down an experiment early).
  void stop();

 private:
  void tick(sim::Time t);

  sim::Simulator& sim_;
  RefreshRateSet rates_;
  RefreshRateSet advertised_;  // rates_ minus transiently revoked levels
  std::vector<int> revoked_;
  int refresh_hz_;          // rate in effect for the current period
  int pending_hz_;          // rate requested for the next period
  sim::Time pending_applies_at_{};  // boundary gate for a settling switch
  SwitchInterceptor* interceptor_ = nullptr;
  VsyncFaultHook* vsync_hook_ = nullptr;
  bool running_ = true;
  bool fast_rate_up_ = false;
  sim::EventHandle next_tick_;
  sim::Time last_tick_{};
  std::uint64_t vsync_count_ = 0;
  std::vector<VsyncObserver*> observers_[3];
  std::vector<std::function<void(sim::Time, int)>> rate_listeners_;
};

}  // namespace ccdem::display
