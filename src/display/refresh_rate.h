// The set of refresh rates a panel supports.
//
// The Galaxy S3 LTE (SHV-E210S) used in the paper exposes five levels:
// 60, 40, 30, 24 and 20 Hz.  The section-based controller is built over an
// arbitrary sorted rate set so other panels (and the ablation benches) can
// plug in different level sets.
#pragma once

#include <algorithm>
#include <cassert>
#include <initializer_list>
#include <vector>

namespace ccdem::display {

class RefreshRateSet {
 public:
  RefreshRateSet() = default;
  RefreshRateSet(std::initializer_list<int> rates_hz)
      : rates_(rates_hz) {
    normalize();
  }
  explicit RefreshRateSet(std::vector<int> rates_hz)
      : rates_(std::move(rates_hz)) {
    normalize();
  }

  /// The panel in the paper: 20/24/30/40/60 Hz.
  static RefreshRateSet galaxy_s3() { return RefreshRateSet{20, 24, 30, 40, 60}; }
  /// A modern LTPO-style panel for extension experiments: 1..120 Hz levels.
  static RefreshRateSet ltpo_120() {
    return RefreshRateSet{1, 10, 24, 30, 40, 60, 90, 120};
  }

  [[nodiscard]] bool empty() const { return rates_.empty(); }
  [[nodiscard]] std::size_t count() const { return rates_.size(); }
  [[nodiscard]] int min_hz() const { return rates_.front(); }
  [[nodiscard]] int max_hz() const { return rates_.back(); }
  [[nodiscard]] int at(std::size_t i) const { return rates_[i]; }
  [[nodiscard]] const std::vector<int>& rates() const { return rates_; }

  [[nodiscard]] bool supports(int hz) const {
    return std::binary_search(rates_.begin(), rates_.end(), hz);
  }

  /// Smallest supported rate >= hz; max rate if hz exceeds all levels.
  [[nodiscard]] int ceil_rate(double hz) const {
    assert(!rates_.empty());
    for (int r : rates_) {
      if (static_cast<double>(r) >= hz) return r;
    }
    return rates_.back();
  }

  /// Index of a supported rate.  Requires supports(hz).
  [[nodiscard]] std::size_t index_of(int hz) const {
    const auto it = std::lower_bound(rates_.begin(), rates_.end(), hz);
    assert(it != rates_.end() && *it == hz);
    return static_cast<std::size_t>(it - rates_.begin());
  }

 private:
  void normalize() {
    std::sort(rates_.begin(), rates_.end());
    rates_.erase(std::unique(rates_.begin(), rates_.end()), rates_.end());
    assert(rates_.empty() || rates_.front() > 0);
  }

  std::vector<int> rates_;  // ascending, unique, positive
};

}  // namespace ccdem::display
