#include "display/display_panel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ccdem::display {

DisplayPanel::DisplayPanel(sim::Simulator& sim, RefreshRateSet rates,
                           int initial_hz)
    : sim_(sim),
      rates_(std::move(rates)),
      advertised_(rates_),
      refresh_hz_(initial_hz),
      pending_hz_(initial_hz) {
  assert(rates_.supports(initial_hz));
  sim_.at(sim_.now(), [this](sim::Time t) { tick(t); });
}

void DisplayPanel::set_rate_advertised(int hz, bool advertised) {
  assert(rates_.supports(hz));
  const auto it = std::find(revoked_.begin(), revoked_.end(), hz);
  if (advertised) {
    if (it == revoked_.end()) return;
    revoked_.erase(it);
  } else {
    if (it != revoked_.end()) return;
    revoked_.push_back(hz);
  }
  std::vector<int> alive;
  for (int r : rates_.rates()) {
    if (std::find(revoked_.begin(), revoked_.end(), r) == revoked_.end()) {
      alive.push_back(r);
    }
  }
  assert(!alive.empty() && "at least one rate must stay advertised");
  advertised_ = RefreshRateSet(std::move(alive));
}

void DisplayPanel::add_observer(VsyncPhase phase, VsyncObserver* obs) {
  assert(obs != nullptr);
  observers_[static_cast<int>(phase)].push_back(obs);
}

void DisplayPanel::add_rate_listener(
    std::function<void(sim::Time, int)> cb) {
  rate_listeners_.push_back(std::move(cb));
}

SwitchResult DisplayPanel::set_refresh_rate(int hz) {
  assert(rates_.supports(hz));
  if (hz == pending_hz_) return {};
  sim::Duration settle{};
  if (interceptor_ != nullptr) {
    const SwitchInterceptor::Decision d =
        interceptor_->on_switch_request(sim_.now(), refresh_hz_, hz);
    if (!d.ack) return SwitchResult{.changed = false, .nacked = true};
    settle = d.settle;
  }
  pending_hz_ = hz;
  pending_applies_at_ = sim_.now() + settle;
  if (fast_rate_up_ && hz > refresh_hz_ && running_ && vsync_count_ > 0) {
    // Fast exit: do not wait out the remaining (long) old period -- retime
    // the next tick to one new-rate period after the last tick, clamped to
    // "not in the past" (nor before the settle window closes).
    const sim::Time earlier = std::max(
        {last_tick_ + sim::period_of_hz(hz), sim_.now(), pending_applies_at_});
    sim_.cancel(next_tick_);
    next_tick_ = sim_.at(earlier, [this](sim::Time t) { tick(t); });
  }
  return SwitchResult{.changed = true};
}

void DisplayPanel::stop() { running_ = false; }

void DisplayPanel::tick(sim::Time t) {
  if (!running_) return;

  // Apply a pending rate change at the period boundary (once any injected
  // settle delay has elapsed; the default pending_applies_at_ of 0 never
  // gates).
  if (pending_hz_ != refresh_hz_ && t >= pending_applies_at_) {
    refresh_hz_ = pending_hz_;
    for (const auto& cb : rate_listeners_) cb(t, refresh_hz_);
  }

  last_tick_ = t;
  const sim::Duration period = sim::period_of_hz(refresh_hz_);

  VsyncFaultHook::Verdict verdict{};
  if (vsync_hook_ != nullptr) {
    verdict = vsync_hook_->on_vsync_tick(t, refresh_hz_);
  }
  if (verdict.drop) {
    // Missed deadline: the frame never reaches the observers (and does not
    // count), but the timing generator keeps its cadence.
    next_tick_ =
        sim_.at(t + period, [this](sim::Time next) { tick(next); });
    return;
  }
  ++vsync_count_;
  if (verdict.delay.ticks > 0) {
    // Late delivery, clamped inside this period so ordering with the next
    // vsync (and any boundary rate change) is preserved.
    const sim::Duration delay{std::min(verdict.delay.ticks, period.ticks - 1)};
    const int hz = refresh_hz_;
    sim_.at(t + delay, [this, hz](sim::Time late) {
      if (!running_) return;
      for (const auto& phase : observers_) {
        for (VsyncObserver* obs : phase) obs->on_vsync(late, hz);
      }
    });
    next_tick_ =
        sim_.at(t + period, [this](sim::Time next) { tick(next); });
    return;
  }
  for (const auto& phase : observers_) {
    for (VsyncObserver* obs : phase) obs->on_vsync(t, refresh_hz_);
  }

  next_tick_ = sim_.at(t + period, [this](sim::Time next) { tick(next); });
}

}  // namespace ccdem::display
