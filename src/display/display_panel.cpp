#include "display/display_panel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ccdem::display {

DisplayPanel::DisplayPanel(sim::Simulator& sim, RefreshRateSet rates,
                           int initial_hz)
    : sim_(sim),
      rates_(std::move(rates)),
      refresh_hz_(initial_hz),
      pending_hz_(initial_hz) {
  assert(rates_.supports(initial_hz));
  sim_.at(sim_.now(), [this](sim::Time t) { tick(t); });
}

void DisplayPanel::add_observer(VsyncPhase phase, VsyncObserver* obs) {
  assert(obs != nullptr);
  observers_[static_cast<int>(phase)].push_back(obs);
}

void DisplayPanel::add_rate_listener(
    std::function<void(sim::Time, int)> cb) {
  rate_listeners_.push_back(std::move(cb));
}

bool DisplayPanel::set_refresh_rate(int hz) {
  assert(rates_.supports(hz));
  if (hz == pending_hz_) return false;
  pending_hz_ = hz;
  if (fast_rate_up_ && hz > refresh_hz_ && running_ && vsync_count_ > 0) {
    // Fast exit: do not wait out the remaining (long) old period -- retime
    // the next tick to one new-rate period after the last tick, clamped to
    // "not in the past".
    const sim::Time earlier =
        std::max(last_tick_ + sim::period_of_hz(hz), sim_.now());
    sim_.cancel(next_tick_);
    next_tick_ = sim_.at(earlier, [this](sim::Time t) { tick(t); });
  }
  return true;
}

void DisplayPanel::stop() { running_ = false; }

void DisplayPanel::tick(sim::Time t) {
  if (!running_) return;

  // Apply a pending rate change at the period boundary.
  if (pending_hz_ != refresh_hz_) {
    refresh_hz_ = pending_hz_;
    for (const auto& cb : rate_listeners_) cb(t, refresh_hz_);
  }

  ++vsync_count_;
  last_tick_ = t;
  for (const auto& phase : observers_) {
    for (VsyncObserver* obs : phase) obs->on_vsync(t, refresh_hz_);
  }

  next_tick_ = sim_.at(t + sim::period_of_hz(refresh_hz_),
                       [this](sim::Time next) { tick(next); });
}

}  // namespace ccdem::display
