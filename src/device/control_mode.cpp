#include "device/control_mode.h"

namespace ccdem::device {

const char* control_mode_name(ControlMode m) {
  switch (m) {
    case ControlMode::kBaseline60:
      return "baseline-60Hz";
    case ControlMode::kSection:
      return "section";
    case ControlMode::kSectionWithBoost:
      return "section+boost";
    case ControlMode::kNaive:
      return "naive";
    case ControlMode::kSectionHysteresis:
      return "section+boost+hysteresis";
    case ControlMode::kE3FrameRate:
      return "e3-framerate";
    case ControlMode::kPipeline:
      return "pipeline";
  }
  return "?";
}

const char* control_mode_keyword(ControlMode m) {
  switch (m) {
    case ControlMode::kBaseline60: return "baseline";
    case ControlMode::kSection: return "section";
    case ControlMode::kSectionWithBoost: return "section+boost";
    case ControlMode::kNaive: return "naive";
    case ControlMode::kSectionHysteresis: return "hysteresis";
    case ControlMode::kE3FrameRate: return "e3";
    case ControlMode::kPipeline: return "pipeline";
  }
  return "baseline";
}

std::optional<ControlMode> control_mode_from_keyword(std::string_view v) {
  for (const ControlMode m :
       {ControlMode::kBaseline60, ControlMode::kSection,
        ControlMode::kSectionWithBoost, ControlMode::kNaive,
        ControlMode::kSectionHysteresis, ControlMode::kE3FrameRate,
        ControlMode::kPipeline}) {
    if (v == control_mode_keyword(m)) return m;
  }
  return std::nullopt;
}

}  // namespace ccdem::device
