#include "device/simulated_device.h"

#include <cassert>
#include <utility>

#include "core/policy_stages.h"

namespace ccdem::device {

/// Bridges the panel's composer phase to the SurfaceFlinger.
class SimulatedDevice::ComposerHook final : public display::VsyncObserver {
 public:
  ComposerHook(gfx::SurfaceFlinger& flinger, obs::ObsSink* obs)
      : flinger_(flinger), obs_(obs) {
    if (obs_ != nullptr) {
      ctr_vsyncs_ = &obs_->counters.counter("panel.vsyncs");
    }
  }

  void on_vsync(sim::Time t, int refresh_hz) override {
    if (ctr_vsyncs_ != nullptr) ++*ctr_vsyncs_;
    const bool composed = flinger_.on_vsync(t);
    if (composed) {
      // The frame occupies the panel until the next V-Sync: one period.
      CCDEM_OBS_SPAN(obs_, obs::Phase::kPanelPresent, t,
                     sim::seconds_f(refresh_hz > 0 ? 1.0 / refresh_hz : 0.0),
                     flinger_.frames_composed(), refresh_hz);
    }
  }

 private:
  gfx::SurfaceFlinger& flinger_;
  obs::ObsSink* obs_;
  std::uint64_t* ctr_vsyncs_ = nullptr;
};

/// Charges the input pipeline's CPU cost per touch event.
class SimulatedDevice::TouchPowerHook final : public input::TouchListener {
 public:
  explicit TouchPowerHook(power::DevicePowerModel& power) : power_(power) {}
  void on_touch(const input::TouchEvent& e) override { power_.on_touch(e.t); }

 private:
  power::DevicePowerModel& power_;
};

SimulatedDevice::SimulatedDevice(bool use_buffer_pool) {
  if (use_buffer_pool) pool_ = std::make_unique<gfx::BufferPool>();
}

SimulatedDevice::~SimulatedDevice() = default;

void SimulatedDevice::configure(const DeviceConfig& config) {
  // Tear down the previous run, dependents first.  The pool (if any) stays:
  // every framebuffer and meter snapshot released here is recycled by the
  // next assembly.
  meter_.reset();
  psr_.reset();
  governor_.reset();
  dpm_.reset();
  apps_.clear();
  pending_input_apps_.clear();
  touch_power_.reset();
  fault_.reset();
  dispatcher_.reset();
  composer_.reset();
  panel_.reset();  // rate listener captures this->power_ / refresh_trace_
  latency_.reset();
  recorder_.reset();
  oled_.reset();
  power_.reset();
  flinger_.reset();
  sim_.reset();
  control_started_ = false;
  finished_ = false;

  config_ = config;
  root_ = sim::Rng(config_.seed);
  sim_ = std::make_unique<sim::Simulator>();

  // --- device substrates, in the canonical order --------------------------
  flinger_ = std::make_unique<gfx::SurfaceFlinger>(config_.screen, pool_.get());
  flinger_->set_exact_change_detection(config_.exact_change_detection);
  flinger_->set_tile_memo(config_.tile_memo);
  flinger_->set_obs(config_.obs);
  if (pool_) {
    // Pool counters are lifetime totals; remember the baseline so finish()
    // can export this run's deltas.
    last_pool_acquires_ = pool_->acquires();
    last_pool_reuses_ = pool_->reuses();
  }

  const int start_hz = initial_refresh_hz(config_);
  power_ = std::make_unique<power::DevicePowerModel>(config_.power, start_hz);
  power_->set_brightness(sim_->now(), config_.brightness);
  flinger_->add_listener(power_.get());

  if (config_.oled) {
    oled_ = std::make_unique<power::OledPanelModel>(*power_, *config_.oled);
    flinger_->add_listener(oled_.get());
  }

  recorder_ = std::make_unique<metrics::FrameStatsRecorder>();
  recorder_->set_obs(config_.obs);
  flinger_->add_listener(recorder_.get());

  if (config_.record_latency) {
    latency_ = std::make_unique<metrics::ResponseLatencyRecorder>();
    flinger_->add_listener(latency_.get());
  }

  panel_ = std::make_unique<display::DisplayPanel>(*sim_, config_.rates,
                                                   start_hz);
  panel_->set_fast_rate_up(config_.fast_rate_up);
  refresh_trace_ = sim::Trace("refresh_hz");
  refresh_trace_.record(sim_->now(), static_cast<double>(start_hz));
  std::uint64_t* ctr_rate_changes =
      config_.obs != nullptr
          ? &config_.obs->counters.counter("panel.rate_changes")
          : nullptr;
  panel_->add_rate_listener([this, ctr_rate_changes](sim::Time t, int hz) {
    power_->on_rate_change(t, hz);
    refresh_trace_.record(t, static_cast<double>(hz));
    if (ctr_rate_changes != nullptr) ++*ctr_rate_changes;
  });

  composer_ = std::make_unique<ComposerHook>(*flinger_, config_.obs);
  panel_->add_observer(display::VsyncPhase::kComposer, composer_.get());

  dispatcher_ = std::make_unique<input::InputDispatcher>(*sim_);
  touch_power_ = std::make_unique<TouchPowerHook>(*power_);

  if (!config_.fault.empty()) {
    // The injector forks its own RNG stream, so adding faults to a run
    // leaves the app and Monkey streams untouched (A/B against the clean
    // run stays seed-comparable).
    fault_ = std::make_unique<fault::FaultInjector>(
        *sim_, config_.fault, root_.fork(kFaultRngStream), config_.obs);
    fault_->attach_panel(panel_.get());
    fault_->attach_input(dispatcher_.get());
  }
}

apps::AppModel& SimulatedDevice::install_app(const apps::AppSpec& spec,
                                             std::uint64_t rng_stream,
                                             bool foreground, int z_order) {
  assert(sim_ && "configure() the device before installing apps");
  // An empty surface_rect means full screen (the classic single-surface
  // case); otherwise the app paints a partial surface at its own z-order,
  // clamped to the panel.  An explicit z_order argument wins over the spec.
  gfx::Rect rect = spec.surface_rect.empty()
                       ? gfx::Rect::of(config_.screen)
                       : spec.surface_rect.intersect(
                             gfx::Rect::of(config_.screen));
  if (rect.empty()) rect = gfx::Rect::of(config_.screen);
  const int z = z_order != 0 ? z_order : spec.surface_z;
  gfx::Surface* surface = flinger_->create_surface(spec.name, rect, z);
  auto model = std::make_unique<apps::AppModel>(spec, surface, power_.get(),
                                                root_.fork(rng_stream));
  if (!foreground) model->set_foreground(false);
  panel_->add_observer(display::VsyncPhase::kApp, model.get());
  if (control_started_) {
    dispatcher_->add_listener(model.get());
  } else {
    pending_input_apps_.push_back(model.get());
  }
  apps_.push_back(std::move(model));
  apps::AppModel& installed = *apps_.back();
  // Overlay surfaces ride along on fixed aux RNG streams: installing (or
  // removing) one never perturbs the primary app's stream, so a multi-
  // surface profile stays seed-comparable with its single-surface twin.
  for (std::size_t i = 0; i < spec.overlays.size(); ++i) {
    install_app(spec.overlays[i], kAuxRngStreamBase + i, foreground, 0);
  }
  return installed;
}

void SimulatedDevice::start_control() {
  assert(sim_ && "configure() the device before starting control");
  assert(!control_started_ && "start_control() is once per configure()");

  if (config_.mode == ControlMode::kE3FrameRate) {
    assert(!apps_.empty() && "the governor caps the first installed app");
    apps::AppModel* primary = apps_.front().get();
    governor_ = std::make_unique<core::FrameRateGovernor>(
        *sim_, *flinger_,
        [primary](double fps) { primary->set_request_cap(fps); },
        power_.get(), config_.governor, pool_.get(), config_.obs,
        panel_.get());
    if (fault_) governor_->set_sample_fault(fault_.get());
  } else if (config_.mode != ControlMode::kBaseline60) {
    core::DpmConfig dc = config_.dpm;
    // A faulted run always gets the self-healing plane: content-rate
    // control against a flaky panel without recovery is not a supported
    // configuration.  Pressure episode classes likewise auto-enable the
    // degradation ladder -- each half independently, so a pressure-only
    // plan registers no recovery counters and vice versa.
    if (!config_.fault.fault_empty()) dc.recovery.enabled = true;
    if (!config_.fault.pressure_empty()) dc.ladder.enabled = true;
    const core::PipelineSpec spec = resolved_pipeline_spec(config_);
    assert(!spec.validate() && "invalid pipeline spec reached the device");
    auto pipeline = core::build_pipeline(spec, config_.rates, dc);
    if (fault_ != nullptr && dc.ladder.enabled) {
      // The only stage named "degrade" is the ladder build_pipeline added.
      auto* ladder = static_cast<core::DegradationLadderStage*>(
          pipeline->stage("degrade"));
      ladder->bind_pressure(fault_.get(), power_.get());
    }
    if (config_.self_refresh) {
      // PSR rides the pipeline when a DPM runs (the stage constructs the
      // controller in start(), preserving the canonical after-the-DPM
      // registration order).
      pipeline->add_stage(std::make_unique<core::SelfRefreshStage>(
          *flinger_, *power_, *config_.self_refresh));
    }
    dpm_ = std::make_unique<core::DisplayPowerManager>(
        *sim_, *panel_, *flinger_, std::move(pipeline), power_.get(), dc,
        pool_.get(), config_.obs);
    if (fault_) dpm_->set_sample_fault(fault_.get());
  }
  if (config_.self_refresh && !dpm_) {
    psr_ = std::make_unique<core::SelfRefreshController>(
        *sim_, *flinger_, *power_, *config_.self_refresh);
  }

  // Input pipeline, canonical order: power hook, then the controller's
  // boost (it must fire before app-side handling, as on Android), then the
  // latency probe, then every app installed so far.
  dispatcher_->add_listener(touch_power_.get());
  if (dpm_) dispatcher_->add_listener(dpm_.get());
  if (governor_) dispatcher_->add_listener(governor_.get());
  if (latency_) dispatcher_->add_listener(latency_.get());
  for (apps::AppModel* app : pending_input_apps_) {
    dispatcher_->add_listener(app);
  }
  pending_input_apps_.clear();
  control_started_ = true;
}

void SimulatedDevice::schedule_monkey_script(
    const input::MonkeyProfile& profile, sim::Duration length,
    std::uint64_t rng_stream, sim::Time offset) {
  assert(sim_ && "configure() the device before scheduling input");
  sim::Rng rng = root_.fork(rng_stream);
  auto script =
      input::generate_monkey_script(rng, profile, length, config_.screen);
  for (auto& g : script) g.start = g.start + (offset - sim::Time{});
  dispatcher_->schedule_script(script);
}

void SimulatedDevice::focus_app(std::size_t index) {
  assert(index < apps_.size());
  for (auto& m : apps_) {
    if (m->foreground()) m->set_foreground(false);
  }
  apps_[index]->set_foreground(true);
}

void SimulatedDevice::ensure_meter() {
  if (!meter_) {
    meter_ = std::make_unique<power::MonsoonMeter>(*sim_, *power_,
                                                   config_.power_sample);
  }
}

void SimulatedDevice::run_for(sim::Duration d) {
  ensure_meter();
  sim_->run_for(d);
}

void SimulatedDevice::run_until(sim::Time t) {
  ensure_meter();
  sim_->run_until(t);
}

void SimulatedDevice::finish() {
  if (finished_ || !sim_) return;
  panel_->stop();
  if (dpm_) dpm_->stop();  // also stops pipeline stages (PSR included)
  if (governor_) governor_->stop();
  if (psr_) psr_->stop();
  if (meter_) meter_->stop();
  recorder_->finish(sim_->now());
  if (config_.obs != nullptr && pool_) {
    // This run's share of the pool's lifetime totals (the pool itself
    // carries across configure() calls by design).
    config_.obs->counters.add("pool.acquires",
                              pool_->acquires() - last_pool_acquires_);
    config_.obs->counters.add("pool.reuses",
                              pool_->reuses() - last_pool_reuses_);
  }
  finished_ = true;
}

void SimulatedDevice::add_frame_listener(gfx::FrameListener* l) {
  flinger_->add_listener(l);
}

}  // namespace ccdem::device
