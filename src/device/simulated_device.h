// SimulatedDevice: the full device assembly behind one façade.
//
// Owns the simulator, panel, SurfaceFlinger, input dispatcher, power model,
// metrics recorders and the selected controller (DisplayPowerManager /
// FrameRateGovernor per ControlMode), wired in the one canonical order the
// experiment harness established -- event ties in the simulator break by
// insertion order, so construction order *is* part of the reproducible
// contract.  Every consumer (run_experiment, switching sessions, the
// extension benches, tests) builds on this class instead of re-deriving the
// ~60 lines of glue.
//
// Lifecycle per run:
//   configure(cfg)            -- tears down the previous run, builds panel +
//                                substrates (first V-Sync is scheduled here)
//   install_app(spec, ...)    -- creates surface + AppModel (repeatable)
//   start_control()           -- creates DPM/governor/PSR and fixes the
//                                input-listener order (boost before apps)
//   schedule_monkey_script()  -- queues deterministic input (repeatable)
//   run_for()/run_until()     -- lazily attaches the Monsoon meter, runs
//   finish()                  -- stops series, closes recorder buckets
//
// A device is reusable: configure() again for the next run.  Constructed
// with `use_buffer_pool = true` the device keeps a gfx::BufferPool whose
// storage (swapchain, surfaces, meter snapshots -- several MB per run)
// carries across configure() calls; contents are always re-initialised, so
// pooled runs are bit-identical to fresh-device runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app_model.h"
#include "core/display_power_manager.h"
#include "core/frame_rate_governor.h"
#include "core/self_refresh_controller.h"
#include "device/device_config.h"
#include "display/display_panel.h"
#include "fault/fault_injector.h"
#include "gfx/buffer_pool.h"
#include "gfx/surface_flinger.h"
#include "input/input_dispatcher.h"
#include "input/monkey.h"
#include "metrics/frame_stats_recorder.h"
#include "metrics/response_latency.h"
#include "power/device_power_model.h"
#include "power/monsoon_meter.h"
#include "power/oled_panel_model.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ccdem::device {

class SimulatedDevice {
 public:
  /// Canonical RNG stream ids: a single-app experiment forks the app model
  /// from stream 1, its Monkey script from stream 2 and the fault injector
  /// from stream 3 off the seed root.
  static constexpr std::uint64_t kAppRngStream = 1;
  static constexpr std::uint64_t kMonkeyRngStream = 2;
  static constexpr std::uint64_t kFaultRngStream = 3;
  /// Overlay surfaces (AppSpec::overlays) fork streams 16, 17, ... in
  /// declaration order, well clear of the primary streams above.
  static constexpr std::uint64_t kAuxRngStreamBase = 16;

  explicit SimulatedDevice(bool use_buffer_pool = false);
  ~SimulatedDevice();

  SimulatedDevice(const SimulatedDevice&) = delete;
  SimulatedDevice& operator=(const SimulatedDevice&) = delete;

  /// Builds a fresh device for `config`, discarding any previous run.  The
  /// panel starts ticking at sim time 0 (first V-Sync fires at now()).
  void configure(const DeviceConfig& config);

  /// Creates the app's surface (full-window unless the spec carries a
  /// surface_rect) and its AppModel (RNG = fork of the config seed at
  /// `rng_stream`), then installs any AppSpec::overlays on aux streams.
  /// Apps installed before start_control()
  /// receive input after the controller (boost fires before the app, as on
  /// Android); apps installed later append in install order.
  apps::AppModel& install_app(const apps::AppSpec& spec,
                              std::uint64_t rng_stream = kAppRngStream,
                              bool foreground = true, int z_order = 0);

  /// Creates the controller selected by the config's mode (none for
  /// kBaseline60; the kE3FrameRate governor caps the first installed app)
  /// and registers the input pipeline in canonical order.  Call exactly
  /// once per configure(), after the primary app is installed.
  void start_control();

  /// Generates and schedules a deterministic Monkey script (RNG = fork of
  /// the config seed at `rng_stream`).  `offset` shifts gesture times, for
  /// per-segment scripts in switching sessions.
  void schedule_monkey_script(const input::MonkeyProfile& profile,
                              sim::Duration length,
                              std::uint64_t rng_stream = kMonkeyRngStream,
                              sim::Time offset = sim::Time{});

  /// Backgrounds every foreground app and resumes `index` (forces a full
  /// window repaint, as a real activity resume does).
  void focus_app(std::size_t index);

  /// Runs the simulation; the Monsoon meter attaches on the first call (it
  /// samples from attach time, mirroring measurement starting with the run).
  void run_for(sim::Duration d);
  void run_until(sim::Time t);

  /// Stops the V-Sync series, controllers and meter, and closes the frame
  /// recorder's last bucket.  Idempotent.
  void finish();

  /// Registers an extra frame listener (metrics, probes) on the compositor.
  void add_frame_listener(gfx::FrameListener* l);

  // --- accessors ---------------------------------------------------------
  [[nodiscard]] const DeviceConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulator& sim() { return *sim_; }
  [[nodiscard]] gfx::SurfaceFlinger& flinger() { return *flinger_; }
  [[nodiscard]] display::DisplayPanel& panel() { return *panel_; }
  [[nodiscard]] power::DevicePowerModel& power() { return *power_; }
  [[nodiscard]] input::InputDispatcher& dispatcher() { return *dispatcher_; }
  [[nodiscard]] metrics::FrameStatsRecorder& recorder() { return *recorder_; }
  /// Null when the config disabled latency recording.
  [[nodiscard]] metrics::ResponseLatencyRecorder* latency() {
    return latency_.get();
  }
  /// Null unless the mode runs the respective controller.
  [[nodiscard]] core::DisplayPowerManager* dpm() { return dpm_.get(); }
  [[nodiscard]] core::FrameRateGovernor* governor() { return governor_.get(); }
  [[nodiscard]] core::SelfRefreshController* psr() {
    // Standalone for the stock arms; owned by the pipeline's self_refresh
    // stage when a DPM runs.
    if (psr_) return psr_.get();
    return dpm_ ? dpm_->self_refresh() : nullptr;
  }
  /// Null unless the config carries a non-empty FaultPlan.
  [[nodiscard]] fault::FaultInjector* fault() { return fault_.get(); }
  [[nodiscard]] power::OledPanelModel* oled_model() { return oled_.get(); }
  /// Null until the first run_for()/run_until() after configure().
  [[nodiscard]] power::MonsoonMeter* meter() { return meter_.get(); }
  [[nodiscard]] const sim::Trace& refresh_trace() const {
    return refresh_trace_;
  }
  [[nodiscard]] std::size_t app_count() const { return apps_.size(); }
  [[nodiscard]] apps::AppModel& app(std::size_t index = 0) {
    return *apps_[index];
  }
  /// Null unless constructed with `use_buffer_pool = true`.
  [[nodiscard]] gfx::BufferPool* buffer_pool() { return pool_.get(); }

 private:
  class ComposerHook;
  class TouchPowerHook;

  void ensure_meter();

  std::unique_ptr<gfx::BufferPool> pool_;  // outlives everything below
  DeviceConfig config_;
  sim::Rng root_{1};

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<gfx::SurfaceFlinger> flinger_;
  std::unique_ptr<power::DevicePowerModel> power_;
  std::unique_ptr<power::OledPanelModel> oled_;
  std::unique_ptr<metrics::FrameStatsRecorder> recorder_;
  std::unique_ptr<metrics::ResponseLatencyRecorder> latency_;
  std::unique_ptr<display::DisplayPanel> panel_;
  std::unique_ptr<ComposerHook> composer_;
  std::unique_ptr<input::InputDispatcher> dispatcher_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<TouchPowerHook> touch_power_;
  std::unique_ptr<core::DisplayPowerManager> dpm_;
  std::unique_ptr<core::FrameRateGovernor> governor_;
  std::unique_ptr<core::SelfRefreshController> psr_;
  std::unique_ptr<power::MonsoonMeter> meter_;
  std::vector<std::unique_ptr<apps::AppModel>> apps_;
  std::vector<apps::AppModel*> pending_input_apps_;

  sim::Trace refresh_trace_{"refresh_hz"};
  bool control_started_ = false;
  bool finished_ = false;

  /// Pool lifetime-counter baselines at configure(), so finish() exports
  /// per-run pool.* deltas even though the pool outlives runs.
  std::uint64_t last_pool_acquires_ = 0;
  std::uint64_t last_pool_reuses_ = 0;
};

}  // namespace ccdem::device
