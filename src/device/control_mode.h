// Control modes: which (if any) display-energy controller a simulated
// device runs.  Lives in the device layer so the façade, the experiment
// harness, benches and config files all speak the same vocabulary.
//
// Every DPM-family mode is canonically a policy-pipeline composition (see
// device_config.h's canonical_pipeline_spec); kPipeline is the escape hatch
// for explicit compositions (`mode = pipeline` + `pipeline = section,...`
// in config files).
#pragma once

#include <optional>
#include <string_view>

namespace ccdem::device {

enum class ControlMode {
  kBaseline60,        ///< stock Android: fixed 60 Hz (the "without" arm)
  kSection,           ///< section-based control only
  kSectionWithBoost,  ///< section-based control + touch boosting (full system)
  kNaive,             ///< ablation: the paper's failed direct mapping
  kSectionHysteresis, ///< extension: full system + asymmetric rate hysteresis
  kE3FrameRate,       ///< baseline: E3-style app frame-rate cap, 60 Hz panel
  kPipeline,          ///< explicit policy-pipeline spec (DeviceConfig::pipeline)
};

/// Human-readable name (reports, logs): "section+boost+hysteresis".
[[nodiscard]] const char* control_mode_name(ControlMode m);

/// Config-file keyword (round-trips through control_mode_from_keyword):
/// "section+boost", "hysteresis", "pipeline", ...
[[nodiscard]] const char* control_mode_keyword(ControlMode m);
[[nodiscard]] std::optional<ControlMode> control_mode_from_keyword(
    std::string_view v);

}  // namespace ccdem::device
