// Control modes: which (if any) display-energy controller a simulated
// device runs.  Lives in the device layer so the façade, the experiment
// harness, benches and config files all speak the same vocabulary.
#pragma once

namespace ccdem::device {

enum class ControlMode {
  kBaseline60,        ///< stock Android: fixed 60 Hz (the "without" arm)
  kSection,           ///< section-based control only
  kSectionWithBoost,  ///< section-based control + touch boosting (full system)
  kNaive,             ///< ablation: the paper's failed direct mapping
  kSectionHysteresis, ///< extension: full system + asymmetric rate hysteresis
  kE3FrameRate,       ///< baseline: E3-style app frame-rate cap, 60 Hz panel
};

[[nodiscard]] const char* control_mode_name(ControlMode m);

}  // namespace ccdem::device
