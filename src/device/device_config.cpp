#include "device/device_config.h"

#include <cassert>

namespace ccdem::device {

int resolved_baseline_hz(const DeviceConfig& config) {
  const int hz =
      config.baseline_hz > 0 ? config.baseline_hz : config.rates.max_hz();
  assert(config.rates.supports(hz));
  return hz;
}

int initial_refresh_hz(const DeviceConfig& config) {
  return (config.mode == ControlMode::kBaseline60 ||
          config.mode == ControlMode::kE3FrameRate)
             ? resolved_baseline_hz(config)
             : config.rates.max_hz();
}

core::PipelineSpec canonical_pipeline_spec(ControlMode mode) {
  using core::StageId;
  core::PipelineSpec spec;
  switch (mode) {
    case ControlMode::kSection:
      spec.stages = {StageId::kSection};
      break;
    case ControlMode::kSectionWithBoost:
      spec.stages = {StageId::kSection, StageId::kBoost};
      break;
    case ControlMode::kSectionHysteresis:
      spec.stages = {StageId::kSection, StageId::kHysteresis, StageId::kBoost};
      break;
    case ControlMode::kNaive:
      spec.stages = {StageId::kNaive};
      break;
    case ControlMode::kBaseline60:
    case ControlMode::kE3FrameRate:
    case ControlMode::kPipeline:
      break;  // no canonical spec
  }
  return spec;
}

core::PipelineSpec resolved_pipeline_spec(const DeviceConfig& config) {
  if (config.mode == ControlMode::kPipeline) return config.pipeline;
  return canonical_pipeline_spec(config.mode);
}

}  // namespace ccdem::device
