#include "device/device_config.h"

#include <cassert>

#include "core/hysteresis_policy.h"

namespace ccdem::device {

const char* control_mode_name(ControlMode m) {
  switch (m) {
    case ControlMode::kBaseline60:
      return "baseline-60Hz";
    case ControlMode::kSection:
      return "section";
    case ControlMode::kSectionWithBoost:
      return "section+boost";
    case ControlMode::kNaive:
      return "naive";
    case ControlMode::kSectionHysteresis:
      return "section+boost+hysteresis";
    case ControlMode::kE3FrameRate:
      return "e3-framerate";
  }
  return "?";
}

int resolved_baseline_hz(const DeviceConfig& config) {
  const int hz =
      config.baseline_hz > 0 ? config.baseline_hz : config.rates.max_hz();
  assert(config.rates.supports(hz));
  return hz;
}

int initial_refresh_hz(const DeviceConfig& config) {
  return (config.mode == ControlMode::kBaseline60 ||
          config.mode == ControlMode::kE3FrameRate)
             ? resolved_baseline_hz(config)
             : config.rates.max_hz();
}

std::unique_ptr<core::RefreshPolicy> make_refresh_policy(
    const DeviceConfig& config) {
  switch (config.mode) {
    case ControlMode::kBaseline60:
    case ControlMode::kE3FrameRate:
      return std::make_unique<core::FixedPolicy>(resolved_baseline_hz(config));
    case ControlMode::kSection:
    case ControlMode::kSectionWithBoost:
      return std::make_unique<core::SectionPolicy>(config.rates,
                                                   config.dpm.section_alpha);
    case ControlMode::kSectionHysteresis:
      return std::make_unique<core::HysteresisPolicy>(
          std::make_unique<core::SectionPolicy>(config.rates,
                                                config.dpm.section_alpha));
    case ControlMode::kNaive:
      return std::make_unique<core::NaivePolicy>(config.rates);
  }
  return nullptr;  // unreachable
}

}  // namespace ccdem::device
