// DeviceConfig: everything needed to assemble one simulated device.
//
// The config is pure data; SimulatedDevice::configure() turns it into a
// fully wired panel + compositor + input + power + controller stack.  The
// helpers below centralise the baseline-rate resolution and policy
// selection that the experiment and session runners used to duplicate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "apps/app_profiles.h"
#include "core/display_power_manager.h"
#include "core/frame_rate_governor.h"
#include "core/policy_pipeline.h"
#include "core/self_refresh_controller.h"
#include "device/control_mode.h"
#include "display/refresh_rate.h"
#include "fault/fault_plan.h"
#include "gfx/geometry.h"
#include "obs/obs.h"
#include "power/device_power_model.h"
#include "power/oled_panel_model.h"
#include "sim/time.h"

namespace ccdem::device {

struct DeviceConfig {
  ControlMode mode = ControlMode::kBaseline60;
  /// Explicit stage composition; used only when `mode == kPipeline` (the
  /// enum modes resolve to canonical specs, see canonical_pipeline_spec).
  /// Must validate (PipelineSpec::validate) when the mode selects it.
  core::PipelineSpec pipeline{};
  core::DpmConfig dpm{};
  /// Used only when `mode == kE3FrameRate`.
  core::GovernorConfig governor{};
  power::DevicePowerParams power = power::DevicePowerParams::galaxy_s3();
  display::RefreshRateSet rates = display::RefreshRateSet::galaxy_s3();
  gfx::Size screen = apps::kGalaxyS3Screen;
  std::uint64_t seed = 1;
  /// Monsoon meter sampling cadence.
  sim::Duration power_sample = sim::milliseconds(50);
  /// Exact pixel ground truth in the compositor (needed for quality and
  /// meter-error metrics; cheap because it only scans dirty regions).
  bool exact_change_detection = true;
  /// Tile-hash compose memoization in the flinger (gfx/tile_cache.h).  On
  /// by default; composed frames are byte-identical either way -- off is the
  /// differential reference the DST memo oracle runs against.
  bool tile_memo = true;
  /// Screen brightness in [0, 1]; the paper measures at 50 %.
  double brightness = 0.5;
  /// Fixed rate of the kBaseline60 arm; 0 = the rate set's maximum.
  int baseline_hz = 0;
  /// Panel "fast exit": rate increases retime the next V-Sync instead of
  /// waiting out the old period.
  bool fast_rate_up = false;
  /// Attach a touch-response latency recorder (on for experiments; benches
  /// that do not report latency can leave it on -- it is passive).
  bool record_latency = true;
  /// OLED extension: replace the constant panel term with a luma-tracking
  /// emission model.  Set `power.panel_static_mw = 0` alongside this.
  std::optional<power::OledParams> oled;
  /// Panel self-refresh extension: link powers down on static content.
  std::optional<core::SelfRefreshConfig> self_refresh;
  /// Fault injection (robustness layer).  Default-constructed = empty plan:
  /// no injector is built, no fault.* counters register, and the device is
  /// bit-identical to a build without the fault layer.  A non-empty plan
  /// builds a FaultInjector (RNG stream kFaultRngStream) and auto-enables
  /// the DPM's self-healing recovery plane.
  fault::FaultPlan fault{};
  /// Observability sink (optional, not owned; must outlive the device).
  /// When set, every component publishes its counters into it and the
  /// hot paths record per-frame spans (compose / meter / govern /
  /// panel-present) for the trace exporters.
  obs::ObsSink* obs = nullptr;
};

/// The fixed rate of the stock arm: `baseline_hz`, or the ladder's maximum
/// when unset.  Asserts the rate is supported.  (Previously duplicated
/// between experiment.cpp and session.cpp.)
[[nodiscard]] int resolved_baseline_hz(const DeviceConfig& config);

/// The rate the panel starts at: the stock arms (kBaseline60, kE3FrameRate)
/// hold the resolved baseline; controlled arms start from the maximum and
/// let the policy take over.
[[nodiscard]] int initial_refresh_hz(const DeviceConfig& config);

/// The canonical pipeline spec of a legacy DPM-family mode:
///   kSection           -> section
///   kSectionWithBoost  -> section,boost
///   kSectionHysteresis -> section,hysteresis,boost
///   kNaive             -> naive
/// Empty for the stock arms (kBaseline60, kE3FrameRate) which run no
/// panel-rate pipeline, and for kPipeline (the spec is the config's).
[[nodiscard]] core::PipelineSpec canonical_pipeline_spec(ControlMode mode);

/// The spec the device will actually run for `config`: the canonical spec
/// of the mode, or config.pipeline for kPipeline.
[[nodiscard]] core::PipelineSpec resolved_pipeline_spec(
    const DeviceConfig& config);

}  // namespace ccdem::device
