#include "input/script_io.h"

#include <ostream>
#include <sstream>

namespace ccdem::input {

void write_script(std::ostream& os, const std::vector<TouchGesture>& script) {
  os << "# ccdem monkey script: " << script.size() << " gestures\n";
  for (const TouchGesture& g : script) {
    if (g.kind == TouchGesture::Kind::kTap) {
      os << "tap " << g.start.ticks << " " << g.from.x << " " << g.from.y
         << "\n";
    } else {
      os << "swipe " << g.start.ticks << " " << g.duration.ticks << " "
         << g.from.x << " " << g.from.y << " " << g.to.x << " " << g.to.y
         << "\n";
    }
  }
}

std::string script_to_string(const std::vector<TouchGesture>& script) {
  std::ostringstream os;
  write_script(os, script);
  return os.str();
}

namespace {
bool fail(std::string* error, int line_no, const std::string& line) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": '" + line + "'";
  }
  return false;
}
}  // namespace

std::optional<std::vector<TouchGesture>> read_script(std::istream& is,
                                                     std::string* error) {
  std::vector<TouchGesture> script;
  std::string line;
  int line_no = 0;
  bool ok = true;
  while (ok && std::getline(is, line)) {
    ++line_no;
    // Strip comments and skip blanks.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank

    TouchGesture g;
    if (kind == "tap") {
      sim::Tick start = 0;
      if (!(ls >> start >> g.from.x >> g.from.y)) {
        ok = fail(error, line_no, line);
        break;
      }
      g.kind = TouchGesture::Kind::kTap;
      g.start = sim::Time{start};
      g.duration = sim::milliseconds(60);
      g.to = g.from;
    } else if (kind == "swipe") {
      sim::Tick start = 0, duration = 0;
      if (!(ls >> start >> duration >> g.from.x >> g.from.y >> g.to.x >>
            g.to.y)) {
        ok = fail(error, line_no, line);
        break;
      }
      if (duration < 0) {
        ok = fail(error, line_no, line);
        break;
      }
      g.kind = TouchGesture::Kind::kSwipe;
      g.start = sim::Time{start};
      g.duration = sim::Duration{duration};
    } else {
      ok = fail(error, line_no, line);
      break;
    }
    if (!script.empty() && g.start < script.back().start) {
      ok = fail(error, line_no, line);
      break;
    }
    script.push_back(g);
  }
  if (!ok) return std::nullopt;
  return script;
}

std::optional<std::vector<TouchGesture>> script_from_string(
    const std::string& text, std::string* error) {
  std::istringstream is(text);
  return read_script(is, error);
}

}  // namespace ccdem::input
