// InputDispatcher: expands gestures into touch event trains and delivers
// them to listeners at simulated time.
//
// Listeners are called in registration order; the harness registers the
// touch-boost policy before the application so the refresh rate is already
// boosted when the app starts its interaction burst (mirrors Android, where
// the input pipeline's boost fires before app-side handling).
#pragma once

#include <cstdint>
#include <vector>

#include "input/touch_event.h"
#include "sim/simulator.h"

namespace ccdem::input {

/// Interposes on event delivery (fault layer): a verdict can drop the
/// event (a lost touch IRQ), duplicate it (a bouncing controller), or defer
/// it -- the deferred copy keeps its ORIGINAL timestamp, so listeners see
/// out-of-order times exactly as a late-serviced IRQ produces.
class InputFaultHook {
 public:
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    sim::Duration delay{};  ///< > 0: deliver this much later
  };
  virtual ~InputFaultHook() = default;
  virtual Verdict on_event(const TouchEvent& e) = 0;
};

class InputDispatcher {
 public:
  /// `sample_rate_hz`: touch controller report rate for move events during
  /// swipes (typical capacitive panels report at 60-120 Hz).
  explicit InputDispatcher(sim::Simulator& sim, double sample_rate_hz = 60.0);

  InputDispatcher(const InputDispatcher&) = delete;
  InputDispatcher& operator=(const InputDispatcher&) = delete;

  void add_listener(TouchListener* l);

  /// Schedules the delivery of every event of every gesture.  Gesture times
  /// are relative to the current simulation time.
  void schedule_script(const std::vector<TouchGesture>& script);

  [[nodiscard]] std::uint64_t events_delivered() const { return delivered_; }

  /// Interposes on delivery (fault layer); null restores lossless delivery.
  /// Not owned; must outlive scheduled deliveries.
  void set_fault_hook(InputFaultHook* hook) { fault_hook_ = hook; }

 private:
  void deliver(const TouchEvent& e);
  void deliver_now(const TouchEvent& e);

  sim::Simulator& sim_;
  sim::Duration sample_period_;
  std::vector<TouchListener*> listeners_;
  InputFaultHook* fault_hook_ = nullptr;
  std::uint64_t delivered_ = 0;
};

}  // namespace ccdem::input
