#include "input/input_dispatcher.h"

#include <cassert>

namespace ccdem::input {

InputDispatcher::InputDispatcher(sim::Simulator& sim, double sample_rate_hz)
    : sim_(sim), sample_period_(sim::period_of_hz(sample_rate_hz)) {
  assert(sample_rate_hz > 0.0);
}

void InputDispatcher::add_listener(TouchListener* l) {
  assert(l != nullptr);
  listeners_.push_back(l);
}

void InputDispatcher::deliver(const TouchEvent& e) {
  if (fault_hook_ == nullptr) {
    deliver_now(e);
    return;
  }
  const InputFaultHook::Verdict v = fault_hook_->on_event(e);
  if (v.drop) return;  // lost IRQ: listeners never see it, nothing counts
  if (v.delay.ticks > 0) {
    // Late IRQ: redeliver at sim-time + delay with the original timestamp
    // (listeners observe an out-of-order event).  The deferred copy skips
    // the hook -- one fault per event.
    sim_.at(e.t + v.delay, [this, e](sim::Time) { deliver_now(e); });
    return;
  }
  deliver_now(e);
  if (v.duplicate) deliver_now(e);
}

void InputDispatcher::deliver_now(const TouchEvent& e) {
  ++delivered_;
  for (TouchListener* l : listeners_) l->on_touch(e);
}

void InputDispatcher::schedule_script(
    const std::vector<TouchGesture>& script) {
  const sim::Time base = sim_.now();
  for (const TouchGesture& g : script) {
    const sim::Time start{base.ticks + g.start.ticks};
    const sim::Time end = start + g.duration;

    sim_.at(start, [this, g](sim::Time t) {
      deliver(TouchEvent{t, g.from, TouchEvent::Action::kDown});
    });

    if (g.kind == TouchGesture::Kind::kSwipe) {
      const double total_s = g.duration.seconds();
      for (sim::Time mt = start + sample_period_; mt < end;
           mt += sample_period_) {
        const double progress =
            total_s <= 0.0 ? 1.0 : (mt - start).seconds() / total_s;
        const gfx::Point pos{
            g.from.x + static_cast<int>(progress * (g.to.x - g.from.x)),
            g.from.y + static_cast<int>(progress * (g.to.y - g.from.y))};
        sim_.at(mt, [this, pos](sim::Time t) {
          deliver(TouchEvent{t, pos, TouchEvent::Action::kMove});
        });
      }
    }

    sim_.at(end, [this, g](sim::Time t) {
      deliver(TouchEvent{t, g.to, TouchEvent::Action::kUp});
    });
  }
}

}  // namespace ccdem::input
