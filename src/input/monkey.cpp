#include "input/monkey.h"

#include <algorithm>
#include <cassert>

namespace ccdem::input {

std::vector<TouchGesture> generate_monkey_script(sim::Rng& rng,
                                                 const MonkeyProfile& profile,
                                                 sim::Duration run_length,
                                                 gfx::Size screen) {
  assert(!screen.empty());
  std::vector<TouchGesture> script;
  sim::Time t{};
  for (;;) {
    const double gap_s =
        std::max(profile.min_gap_s, rng.exponential(profile.mean_gap_s));
    t += sim::seconds_f(gap_s);
    if (t.ticks >= run_length.ticks) break;

    TouchGesture g;
    g.start = t;
    g.from = gfx::Point{
        static_cast<int>(rng.uniform_int(0, screen.width - 1)),
        static_cast<int>(rng.uniform_int(0, screen.height - 1))};
    if (rng.chance(profile.swipe_probability)) {
      g.kind = TouchGesture::Kind::kSwipe;
      g.duration = sim::seconds_f(rng.uniform(profile.swipe_duration_min_s,
                                              profile.swipe_duration_max_s));
      // Mostly-vertical swipes: scrolling dominates mobile interaction.
      const int dx = static_cast<int>(rng.uniform_int(-80, 80));
      const int dy = static_cast<int>(rng.uniform_int(200, 700)) *
                     (rng.chance(0.5) ? 1 : -1);
      g.to = gfx::Point{std::clamp(g.from.x + dx, 0, screen.width - 1),
                        std::clamp(g.from.y + dy, 0, screen.height - 1)};
      t += g.duration;
    } else {
      g.kind = TouchGesture::Kind::kTap;
      g.duration = sim::milliseconds(60);
      g.to = g.from;
      t += g.duration;
    }
    if (g.start.ticks < run_length.ticks) script.push_back(g);
  }
  return script;
}

}  // namespace ccdem::input
