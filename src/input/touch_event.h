// Touch input types.
//
// Gestures (taps, swipes) are the unit the Monkey script generator emits;
// the dispatcher expands each gesture into a down / move... / up event train
// sampled at the touch controller rate, since both the touch-boost policy
// and application burst behaviour react to individual events.
#pragma once

#include "gfx/geometry.h"
#include "sim/time.h"

namespace ccdem::input {

struct TouchEvent {
  enum class Action { kDown, kMove, kUp };

  sim::Time t{};
  gfx::Point pos{};
  Action action = Action::kDown;
};

struct TouchGesture {
  enum class Kind { kTap, kSwipe };

  sim::Time start{};
  sim::Duration duration{};  ///< zero for taps
  Kind kind = Kind::kTap;
  gfx::Point from{};
  gfx::Point to{};           ///< equals `from` for taps

  [[nodiscard]] bool operator==(const TouchGesture&) const = default;
};

class TouchListener {
 public:
  virtual ~TouchListener() = default;
  virtual void on_touch(const TouchEvent& e) = 0;
};

}  // namespace ccdem::input
