#include "gfx/swapchain.h"

#include <cassert>

namespace ccdem::gfx {

Framebuffer& Swapchain::begin_frame() {
  assert(!in_frame_ && "begin_frame() twice without present()");
  in_frame_ = true;
  // Reconcile: the back buffer misses exactly the damage of the frame now
  // in front (the back buffer *is* frame N-2 plus nothing since).
  Framebuffer& target = buffers_.back();
  last_reconciled_pixels_ = 0;
  for (const Rect& r : last_damage_.rects()) {
    target.blit(buffers_.front(), r, Point{r.x, r.y});
    last_reconciled_pixels_ += r.area();
  }
  return target;
}

void Swapchain::present(const Region& damage) {
  assert(in_frame_ && "present() without begin_frame()");
  in_frame_ = false;
  last_damage_ = damage;
  buffers_.swap();
  ++presents_;
}

}  // namespace ccdem::gfx
