// Row-span pixel kernels shared by the compositor, the content-rate meter,
// and tests.
//
// Every pixel loop on the simulator's hot path -- blit clipping, region
// equality, changed-pixel detection, grid-sample gathering -- bottoms out in
// one of these kernels.  They operate on raw row-major Rgb888 storage
// (base pointer + stride) so Framebuffer, Surface buffers, and sample
// vectors all share the same code, and they use memcmp/memcpy over whole
// row spans: Rgb888 is three packed bytes with defaulted comparison, so
// byte equality is exactly pixel equality.  Keeping them header-only lets
// the compiler specialise the row loops at every call site.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>

#include "gfx/geometry.h"
#include "gfx/pixel.h"

namespace ccdem::gfx::kernels {

/// A fully clipped copy: `size` pixels read from `src` and written at `dst`
/// (both are top-left origins in their respective buffers).  Empty when the
/// requested rectangle fell entirely outside either buffer.
struct CopyWindow {
  Point src;
  Point dst;
  Size size;

  [[nodiscard]] constexpr bool empty() const { return size.empty(); }
};

/// Clips a blit request (`src_rect` from a buffer with `src_bounds`, placed
/// at `dst` in a buffer with `dst_bounds`) against both buffers, shifting
/// the source window to match whatever the destination clip cut off.  The
/// single source of truth for blit clipping.
[[nodiscard]] constexpr CopyWindow clip_copy(Rect src_rect, Rect src_bounds,
                                             Point dst, Rect dst_bounds) {
  const Rect s = src_rect.intersect(src_bounds);
  if (s.empty()) return {};
  // Dropping clipped-off source margins moves the destination origin too.
  const Rect placed{dst.x + (s.x - src_rect.x), dst.y + (s.y - src_rect.y),
                    s.width, s.height};
  const Rect d = placed.intersect(dst_bounds);
  if (d.empty()) return {};
  // And clipping the destination trims the matching source margin back.
  return CopyWindow{Point{s.x + (d.x - placed.x), s.y + (d.y - placed.y)},
                    Point{d.x, d.y}, Size{d.width, d.height}};
}

/// Copies the window row by row.  No clipping: the window must already be
/// valid for both buffers (clip_copy guarantees this).
inline void copy_rows(Rgb888* dst_base, int dst_stride, const Rgb888* src_base,
                      int src_stride, const CopyWindow& w) {
  const std::size_t bytes =
      static_cast<std::size_t>(w.size.width) * sizeof(Rgb888);
  for (int row = 0; row < w.size.height; ++row) {
    std::memcpy(dst_base +
                    static_cast<std::size_t>(w.dst.y + row) * dst_stride +
                    w.dst.x,
                src_base +
                    static_cast<std::size_t>(w.src.y + row) * src_stride +
                    w.src.x,
                bytes);
  }
}

/// True iff the pixels of rect `r` match between two buffers that share one
/// stride (the same-size case: both rects at the same coordinates).  Returns
/// on the first differing row.  No clipping; `r` must be in bounds.
[[nodiscard]] inline bool rows_equal(const Rgb888* a, const Rgb888* b,
                                     int stride, Rect r) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  for (int y = r.y; y < r.bottom(); ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * stride + r.x;
    if (std::memcmp(a + off, b + off, bytes) != 0) return false;
  }
  return true;
}

/// True iff rect `a_rect` of buffer `a` matches the same-sized window of
/// buffer `b` whose top-left is `b_origin` -- the offset case (a surface's
/// local pixels against their on-screen position).  No clipping.
[[nodiscard]] inline bool rows_equal_offset(const Rgb888* a, int a_stride,
                                            Rect a_rect, const Rgb888* b,
                                            int b_stride, Point b_origin) {
  const std::size_t bytes =
      static_cast<std::size_t>(a_rect.width) * sizeof(Rgb888);
  for (int row = 0; row < a_rect.height; ++row) {
    const Rgb888* pa =
        a + static_cast<std::size_t>(a_rect.y + row) * a_stride + a_rect.x;
    const Rgb888* pb =
        b + static_cast<std::size_t>(b_origin.y + row) * b_stride + b_origin.x;
    if (std::memcmp(pa, pb, bytes) != 0) return false;
  }
  return true;
}

/// Position of the first differing pixel (row-major order) of rect `r`
/// between two same-stride buffers, or found == false if the rect matches.
/// Rows are screened with memcmp; only a differing row is scanned per pixel.
struct FirstDiff {
  bool found = false;
  Point at;
};

[[nodiscard]] inline FirstDiff first_diff(const Rgb888* a, const Rgb888* b,
                                          int stride, Rect r) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  for (int y = r.y; y < r.bottom(); ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * stride + r.x;
    if (std::memcmp(a + off, b + off, bytes) == 0) continue;
    for (int x = 0; x < r.width; ++x) {
      if (a[off + x] != b[off + x]) return {true, Point{r.x + x, y}};
    }
  }
  return {};
}

/// Gathers `idx.size()` scattered pixels (linear offsets into `px`) into
/// `out`.  The batched form keeps the indices and the output contiguous so
/// the loop is a pure load/store stream.
inline void gather(std::span<const Rgb888> px,
                   std::span<const std::size_t> idx, Rgb888* out) {
  for (std::size_t k = 0; k < idx.size(); ++k) out[k] = px[idx[k]];
}

}  // namespace ccdem::gfx::kernels
