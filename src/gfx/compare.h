// Row-span pixel kernels shared by the compositor, the content-rate meter,
// and tests.
//
// Every pixel loop on the simulator's hot path -- blit clipping, region
// equality, changed-pixel detection, grid-sample gathering -- bottoms out in
// one of these kernels.  They operate on raw row-major Rgb888 storage
// (base pointer + stride) so Framebuffer, Surface buffers, and sample
// vectors all share the same code: Rgb888 is three packed bytes with
// defaulted comparison, so byte equality is exactly pixel equality.
//
// The kernels are runtime-dispatched through a function-pointer table
// (KernelOps).  The scalar implementations below are the reference -- every
// wide variant (SSE2, AVX2; NEON is stubbed until an ARM port lands) must be
// byte-identical to them, and check_scenario's kernel oracle proves it over
// the fuzz corpus.  The active table is selected once, at first use, from
// CPUID, and can be forced with the CCDEM_KERNEL environment variable
// (scalar|sse2|avx2|neon; an unsupported choice aborts rather than silently
// falling back, so CI matrix runs test what they claim to).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "gfx/geometry.h"
#include "gfx/pixel.h"

namespace ccdem::gfx::kernels {

/// A fully clipped copy: `size` pixels read from `src` and written at `dst`
/// (both are top-left origins in their respective buffers).  Empty when the
/// requested rectangle fell entirely outside either buffer.
struct CopyWindow {
  Point src;
  Point dst;
  Size size;

  [[nodiscard]] constexpr bool empty() const { return size.empty(); }
};

/// Clips a blit request (`src_rect` from a buffer with `src_bounds`, placed
/// at `dst` in a buffer with `dst_bounds`) against both buffers, shifting
/// the source window to match whatever the destination clip cut off.  The
/// single source of truth for blit clipping.
[[nodiscard]] constexpr CopyWindow clip_copy(Rect src_rect, Rect src_bounds,
                                             Point dst, Rect dst_bounds) {
  const Rect s = src_rect.intersect(src_bounds);
  if (s.empty()) return {};
  // Dropping clipped-off source margins moves the destination origin too.
  const Rect placed{dst.x + (s.x - src_rect.x), dst.y + (s.y - src_rect.y),
                    s.width, s.height};
  const Rect d = placed.intersect(dst_bounds);
  if (d.empty()) return {};
  // And clipping the destination trims the matching source margin back.
  return CopyWindow{Point{s.x + (d.x - placed.x), s.y + (d.y - placed.y)},
                    Point{d.x, d.y}, Size{d.width, d.height}};
}

/// Position of the first differing pixel (row-major order) of rect `r`
/// between two same-stride buffers, or found == false if the rect matches.
struct FirstDiff {
  bool found = false;
  Point at;
};

// ---------------------------------------------------------------------------
// Scalar reference implementations.  Header-inline so tests and the wide
// variants' tail handling can call them directly; memcmp/memcpy over whole
// row spans is already well optimised but carries per-call dispatch the wide
// kernels avoid on the span sizes the compositor actually sees.
// ---------------------------------------------------------------------------
namespace scalar {

/// Copies the window row by row.  No clipping: the window must already be
/// valid for both buffers (clip_copy guarantees this).
inline void copy_rows(Rgb888* dst_base, int dst_stride, const Rgb888* src_base,
                      int src_stride, const CopyWindow& w) {
  const std::size_t bytes =
      static_cast<std::size_t>(w.size.width) * sizeof(Rgb888);
  for (int row = 0; row < w.size.height; ++row) {
    std::memcpy(dst_base +
                    static_cast<std::size_t>(w.dst.y + row) * dst_stride +
                    w.dst.x,
                src_base +
                    static_cast<std::size_t>(w.src.y + row) * src_stride +
                    w.src.x,
                bytes);
  }
}

/// True iff the pixels of rect `r` match between two buffers that share one
/// stride (the same-size case: both rects at the same coordinates).  Returns
/// on the first differing row.  No clipping; `r` must be in bounds.
[[nodiscard]] inline bool rows_equal(const Rgb888* a, const Rgb888* b,
                                     int stride, Rect r) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  for (int y = r.y; y < r.bottom(); ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * stride + r.x;
    if (std::memcmp(a + off, b + off, bytes) != 0) return false;
  }
  return true;
}

/// True iff rect `a_rect` of buffer `a` matches the same-sized window of
/// buffer `b` whose top-left is `b_origin` -- the offset case (a surface's
/// local pixels against their on-screen position).  No clipping.
[[nodiscard]] inline bool rows_equal_offset(const Rgb888* a, int a_stride,
                                            Rect a_rect, const Rgb888* b,
                                            int b_stride, Point b_origin) {
  const std::size_t bytes =
      static_cast<std::size_t>(a_rect.width) * sizeof(Rgb888);
  for (int row = 0; row < a_rect.height; ++row) {
    const Rgb888* pa =
        a + static_cast<std::size_t>(a_rect.y + row) * a_stride + a_rect.x;
    const Rgb888* pb =
        b + static_cast<std::size_t>(b_origin.y + row) * b_stride + b_origin.x;
    if (std::memcmp(pa, pb, bytes) != 0) return false;
  }
  return true;
}

/// Rows are screened with memcmp; only a differing row is scanned per pixel.
[[nodiscard]] inline FirstDiff first_diff(const Rgb888* a, const Rgb888* b,
                                          int stride, Rect r) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  for (int y = r.y; y < r.bottom(); ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * stride + r.x;
    if (std::memcmp(a + off, b + off, bytes) == 0) continue;
    for (int x = 0; x < r.width; ++x) {
      if (a[off + x] != b[off + x]) return {true, Point{r.x + x, y}};
    }
  }
  return {};
}

/// Gathers `n` scattered pixels (linear offsets into `px`) into `out`.
inline void gather(const Rgb888* px, const std::size_t* idx, std::size_t n,
                   Rgb888* out) {
  for (std::size_t k = 0; k < n; ++k) out[k] = px[idx[k]];
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

/// One kernel variant: a name plus the full set of row-span entry points.
/// Variants differ only in speed -- the kernel oracle holds them to
/// byte-identical outputs, so callers never care which table is live.
struct KernelOps {
  const char* name = "";
  void (*copy_rows)(Rgb888*, int, const Rgb888*, int, const CopyWindow&) =
      nullptr;
  bool (*rows_equal)(const Rgb888*, const Rgb888*, int, Rect) = nullptr;
  bool (*rows_equal_offset)(const Rgb888*, int, Rect, const Rgb888*, int,
                            Point) = nullptr;
  FirstDiff (*first_diff)(const Rgb888*, const Rgb888*, int, Rect) = nullptr;
  void (*gather)(const Rgb888*, const std::size_t*, std::size_t, Rgb888*) =
      nullptr;
};

/// The scalar reference table; always available on every platform.
[[nodiscard]] const KernelOps& scalar_kernels();

// Wide tables, defined in their own translation units so each can be built
// with the matching -m flag.  Only referenced where the target architecture
// compiles them in.
#if defined(__x86_64__) || defined(__i386__)
[[nodiscard]] const KernelOps& sse2_kernels();
[[nodiscard]] const KernelOps& avx2_kernels();
#elif defined(__ARM_NEON)
[[nodiscard]] const KernelOps& neon_kernels();
#endif

/// Tables this build can run on this CPU, scalar first.  NEON is listed only
/// on ARM builds (currently none -- the entry exists so the dispatch seam is
/// already in place for a port).
[[nodiscard]] const std::vector<const KernelOps*>& available_kernels();

/// Looks a variant up by name ("scalar", "sse2", "avx2", "neon") among the
/// available tables; nullptr when unknown or unsupported on this CPU.
[[nodiscard]] const KernelOps* find_kernels(std::string_view name);

namespace detail {
/// Set once on first use (CPUID best, or the CCDEM_KERNEL override); swapped
/// only by ScopedKernelOverride.  Relaxed is enough: all tables produce
/// byte-identical results, so readers can never observe a wrong answer.
extern std::atomic<const KernelOps*> g_active;
const KernelOps* resolve_and_cache();
}  // namespace detail

/// The table every dispatch wrapper routes through.
[[nodiscard]] inline const KernelOps& active_kernels() {
  const KernelOps* ops = detail::g_active.load(std::memory_order_relaxed);
  return ops != nullptr ? *ops : *detail::resolve_and_cache();
}

/// Forces a specific table for the lifetime of the object -- the in-process
/// leg of the kernel differential oracle and the per-variant benches.  Not
/// for use while fleet workers are running: the swap is global.
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(const KernelOps& ops)
      : prev_(&active_kernels()) {
    detail::g_active.store(&ops, std::memory_order_relaxed);
  }
  ~ScopedKernelOverride() {
    detail::g_active.store(prev_, std::memory_order_relaxed);
  }
  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  const KernelOps* prev_;
};

// ---------------------------------------------------------------------------
// Dispatch wrappers -- the API every call site uses.  Signatures are
// unchanged from the pre-dispatch header, so Framebuffer, SurfaceFlinger,
// GridSampler and the tests compile against them untouched.
// ---------------------------------------------------------------------------

inline void copy_rows(Rgb888* dst_base, int dst_stride, const Rgb888* src_base,
                      int src_stride, const CopyWindow& w) {
  active_kernels().copy_rows(dst_base, dst_stride, src_base, src_stride, w);
}

[[nodiscard]] inline bool rows_equal(const Rgb888* a, const Rgb888* b,
                                     int stride, Rect r) {
  return active_kernels().rows_equal(a, b, stride, r);
}

[[nodiscard]] inline bool rows_equal_offset(const Rgb888* a, int a_stride,
                                            Rect a_rect, const Rgb888* b,
                                            int b_stride, Point b_origin) {
  return active_kernels().rows_equal_offset(a, a_stride, a_rect, b, b_stride,
                                            b_origin);
}

[[nodiscard]] inline FirstDiff first_diff(const Rgb888* a, const Rgb888* b,
                                          int stride, Rect r) {
  return active_kernels().first_diff(a, b, stride, r);
}

inline void gather(std::span<const Rgb888> px,
                   std::span<const std::size_t> idx, Rgb888* out) {
  active_kernels().gather(px.data(), idx.data(), idx.size(), out);
}

}  // namespace ccdem::gfx::kernels
