// Generic double buffer (front/back pair with swap).
//
// The paper's meter keeps the previous frame in an extra buffer and swaps
// roles each update so comparison and capture proceed without copying
// ("double buffering ... improves the performance of measuring by allowing a
// continuous operation").  We use the same structure for the meter's sample
// snapshots and, in full-frame mode, for whole framebuffers.
#pragma once

#include <utility>

namespace ccdem::gfx {

template <typename T>
class DoubleBuffer {
 public:
  DoubleBuffer() = default;
  DoubleBuffer(T front, T back)
      : buffers_{std::move(front), std::move(back)} {}

  [[nodiscard]] T& front() { return buffers_[front_index_]; }
  [[nodiscard]] const T& front() const { return buffers_[front_index_]; }
  [[nodiscard]] T& back() { return buffers_[1 - front_index_]; }
  [[nodiscard]] const T& back() const { return buffers_[1 - front_index_]; }

  /// Exchanges the roles of the two buffers in O(1); no data moves.
  void swap() { front_index_ = 1 - front_index_; }

  [[nodiscard]] int front_index() const { return front_index_; }

 private:
  T buffers_[2]{};
  int front_index_ = 0;
};

}  // namespace ccdem::gfx
