// Surface: a per-application render target managed by the SurfaceFlinger.
//
// Mirrors the Android model the paper describes: applications render partial
// images ("surfaces") which Surface Manager combines into the framebuffer.
// An app paints through `begin_frame()` / `post_frame()`: posting with an
// empty dirty region models a redundant frame request (the app asked for a
// frame but drew nothing new), which is exactly the waste the paper targets.
#pragma once

#include <string>

#include "gfx/canvas.h"
#include "gfx/framebuffer.h"
#include "gfx/geometry.h"

namespace ccdem::gfx {

class BufferPool;

class Surface {
 public:
  /// `pool` (optional) recycles the surface buffer's pixel storage.
  Surface(std::string name, Rect screen_rect, int z_order,
          BufferPool* pool = nullptr);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Rect screen_rect() const { return screen_rect_; }
  [[nodiscard]] int z_order() const { return z_order_; }
  [[nodiscard]] bool visible() const { return visible_; }
  void set_visible(bool v) { visible_ = v; }

  /// The surface's own pixel buffer (size == screen_rect size).
  [[nodiscard]] const Framebuffer& buffer() const { return buffer_; }

  /// Starts a frame; returns a canvas over the surface buffer.  Drawing is
  /// optional -- an app posting without drawing submits a redundant frame.
  Canvas& begin_frame();

  /// Queues the frame for the next composition.  Returns the dirty bounds
  /// (in surface-local coordinates) accumulated since begin_frame().
  Rect post_frame();

  /// Composition-side API -----------------------------------------------
  [[nodiscard]] bool has_pending_frame() const { return pending_; }
  /// Bounding box of the pending dirty region (surface-local).
  [[nodiscard]] Rect pending_dirty() const { return pending_dirty_.bounds(); }
  /// The precise multi-rect dirty set (surface-local).
  [[nodiscard]] const Region& pending_dirty_region() const {
    return pending_dirty_;
  }
  /// Consumes the pending frame (called by the compositor after latching).
  void acquire_frame();

 private:
  std::string name_;
  Rect screen_rect_;
  int z_order_;
  bool visible_ = true;
  Framebuffer buffer_;
  Canvas canvas_;
  bool in_frame_ = false;
  bool pending_ = false;
  Region pending_dirty_;
};

}  // namespace ccdem::gfx
