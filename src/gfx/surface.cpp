#include "gfx/surface.h"

#include <cassert>
#include <utility>

namespace ccdem::gfx {

Surface::Surface(std::string name, Rect screen_rect, int z_order,
                 BufferPool* pool)
    : name_(std::move(name)),
      screen_rect_(screen_rect),
      z_order_(z_order),
      buffer_(screen_rect.width, screen_rect.height, pool),
      canvas_(buffer_) {
  assert(!screen_rect.empty());
}

Canvas& Surface::begin_frame() {
  in_frame_ = true;
  return canvas_;
}

Rect Surface::post_frame() {
  assert(in_frame_ && "post_frame() without begin_frame()");
  in_frame_ = false;
  Region dirty = canvas_.take_dirty_region();
  const Rect bounds = dirty.bounds();
  // Consecutive posts before a composition latch merge their dirty regions.
  if (pending_) {
    pending_dirty_.add(dirty);
  } else {
    pending_dirty_ = std::move(dirty);
  }
  pending_ = true;
  return bounds;
}

void Surface::acquire_frame() {
  pending_ = false;
  pending_dirty_.clear();
}

}  // namespace ccdem::gfx
