// Swapchain: a double-buffered framebuffer with damage reconciliation.
//
// Real compositors render frame N into the back buffer while frame N-1
// scans out from the front, then flip.  Because the back buffer holds frame
// N-2, the renderer must first reconcile it: re-copy the region frame N-1
// changed (EGL_EXT_buffer_age semantics with age = 2).  The swapchain
// tracks that damage so SurfaceFlinger can compose incrementally and the
// content-rate meter can compare against the genuinely displayed previous
// frame -- which, after a flip, is simply the other buffer (the "extra
// buffer" of the paper's section 3.1, for free).
#pragma once

#include "gfx/buffer_pool.h"
#include "gfx/double_buffer.h"
#include "gfx/framebuffer.h"
#include "gfx/region.h"

namespace ccdem::gfx {

class Swapchain {
 public:
  /// `pool` (optional) recycles the two buffers' pixel storage across
  /// swapchain lifetimes -- fleet sweeps rebuild the device per run.
  explicit Swapchain(Size size, BufferPool* pool = nullptr)
      : buffers_(Framebuffer(size, pool), Framebuffer(size, pool)) {}

  /// The buffer currently on screen (scan-out source, meter input).
  [[nodiscard]] const Framebuffer& front() const { return buffers_.front(); }

  /// Begins rendering the next frame: reconciles the back buffer (copies
  /// the previous frame's damage from the front so the back is up to date)
  /// and returns it for composition.
  Framebuffer& begin_frame();

  /// Finishes the frame: records its damage and flips.  After this call
  /// front() shows the new frame and the *other* buffer holds the previous
  /// frame's pixels.
  void present(const Region& damage);

  /// The previous frame (valid after the first present; before that it is
  /// the initial blank buffer).
  [[nodiscard]] const Framebuffer& previous() const {
    return buffers_.back();
  }

  [[nodiscard]] std::uint64_t presents() const { return presents_; }

  /// Pixels copied by the most recent begin_frame()'s reconciliation.
  [[nodiscard]] std::int64_t last_reconciled_pixels() const {
    return last_reconciled_pixels_;
  }

 private:
  DoubleBuffer<Framebuffer> buffers_;
  Region last_damage_;  ///< damage of the frame currently in front()
  bool in_frame_ = false;
  std::uint64_t presents_ = 0;
  std::int64_t last_reconciled_pixels_ = 0;
};

}  // namespace ccdem::gfx
