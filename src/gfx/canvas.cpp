#include "gfx/canvas.h"

#include <algorithm>
#include <cmath>

namespace ccdem::gfx {

void Canvas::fill(Rgb888 c) {
  fb_->fill(c);
  mark(fb_->bounds());
}

void Canvas::fill_rect(Rect r, Rgb888 c) {
  fb_->fill_rect(r, c);
  mark(r);
}

void Canvas::draw_circle(Point center, int radius, Rgb888 c) {
  if (radius <= 0) return;
  const Rect box{center.x - radius, center.y - radius, 2 * radius + 1,
                 2 * radius + 1};
  const Rect clipped = box.intersect(fb_->bounds());
  if (clipped.empty()) return;
  const int r2 = radius * radius;
  for (int y = clipped.y; y < clipped.bottom(); ++y) {
    const int dy = y - center.y;
    for (int x = clipped.x; x < clipped.right(); ++x) {
      const int dx = x - center.x;
      if (dx * dx + dy * dy <= r2) fb_->set(x, y, c);
    }
  }
  mark(clipped);
}

void Canvas::fill_gradient(Rect r, Rgb888 top, Rgb888 bottom) {
  const Rect c = r.intersect(fb_->bounds());
  if (c.empty()) return;
  for (int y = c.y; y < c.bottom(); ++y) {
    const double t =
        r.height <= 1 ? 0.0 : static_cast<double>(y - r.y) / (r.height - 1);
    const Rgb888 col{
        static_cast<std::uint8_t>(top.r + t * (bottom.r - top.r)),
        static_cast<std::uint8_t>(top.g + t * (bottom.g - top.g)),
        static_cast<std::uint8_t>(top.b + t * (bottom.b - top.b))};
    auto row = fb_->row(y);
    std::fill(row.begin() + c.x, row.begin() + c.right(), col);
  }
  mark(c);
}

void Canvas::draw_text_block(Rect r, Rgb888 fg, Rgb888 bg,
                             std::uint32_t seed) {
  const Rect c = r.intersect(fb_->bounds());
  if (c.empty()) return;
  fb_->fill_rect(c, bg);
  // Simulate lines of text as short fg runs; a simple LCG keyed by `seed`
  // varies run lengths so distinct strings yield distinct pixels.
  std::uint32_t state = seed * 2654435761u + 12345u;
  const int line_height = 14;
  const int glyph_height = 9;
  for (int ly = c.y + 3; ly + glyph_height <= c.bottom(); ly += line_height) {
    int x = c.x + 4;
    while (x < c.right() - 4) {
      state = state * 1664525u + 1013904223u;
      const int run = 3 + static_cast<int>(state % 23);   // word width
      const int gap = 3 + static_cast<int>((state >> 8) % 6);
      const int end = std::min(x + run, c.right() - 4);
      fb_->fill_rect(Rect{x, ly, end - x, glyph_height}, fg);
      x = end + gap;
    }
  }
  mark(c);
}

void Canvas::draw_hline(int x0, int x1, int y, Rgb888 c) {
  fill_rect(Rect{std::min(x0, x1), y, std::abs(x1 - x0) + 1, 1}, c);
}

void Canvas::draw_vline(int x, int y0, int y1, Rgb888 c) {
  fill_rect(Rect{x, std::min(y0, y1), 1, std::abs(y1 - y0) + 1}, c);
}

void Canvas::draw_frame(Rect r, int thickness, Rgb888 c) {
  if (r.empty() || thickness <= 0) return;
  fill_rect(Rect{r.x, r.y, r.width, thickness}, c);
  fill_rect(Rect{r.x, r.bottom() - thickness, r.width, thickness}, c);
  fill_rect(Rect{r.x, r.y, thickness, r.height}, c);
  fill_rect(Rect{r.right() - thickness, r.y, thickness, r.height}, c);
}

void Canvas::blit(const Framebuffer& src, Rect src_rect, Point dst) {
  fb_->blit(src, src_rect, dst);
  mark(Rect{dst.x, dst.y, src_rect.width, src_rect.height});
}

void Canvas::scroll_up(Rect region, int dy) {
  fb_->scroll_up(region, dy);
  mark(region);
}

void Canvas::shift(Rect region, int dx, int dy) {
  fb_->shift(region, dx, dy);
  mark(region);
}

}  // namespace ccdem::gfx
