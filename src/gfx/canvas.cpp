#include "gfx/canvas.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

namespace ccdem::gfx {

void Canvas::fill(Rgb888 c) {
  fb_->fill(c);
  mark(fb_->bounds());
}

void Canvas::fill_rect(Rect r, Rgb888 c) {
  fb_->fill_rect(r, c);
  mark(r);
}

void Canvas::draw_circle(Point center, int radius, Rgb888 c) {
  if (radius <= 0) return;
  const Rect box{center.x - radius, center.y - radius, 2 * radius + 1,
                 2 * radius + 1};
  const Rect clipped = box.intersect(fb_->bounds());
  if (clipped.empty()) return;
  const int r2 = radius * radius;
  // Row spans: dx^2 + dy^2 <= r^2 is |dx| <= floor(sqrt(r^2 - dy^2)), so
  // each scanline is one contiguous fill instead of a per-pixel test.  The
  // float sqrt is corrected to the exact integer bound, so the covered
  // pixels are identical to the per-pixel formulation.
  for (int y = clipped.y; y < clipped.bottom(); ++y) {
    const int dy = y - center.y;
    const int span2 = r2 - dy * dy;
    if (span2 < 0) continue;
    int s = static_cast<int>(std::sqrt(static_cast<double>(span2)));
    while ((s + 1) * (s + 1) <= span2) ++s;
    while (s * s > span2) --s;
    const int x0 = std::max(center.x - s, clipped.x);
    const int x1 = std::min(center.x + s + 1, clipped.right());
    if (x0 >= x1) continue;
    auto row = fb_->row(y);
    fill_span(row.data() + x0, static_cast<std::size_t>(x1 - x0), c);
  }
  mark(clipped);
}

void Canvas::fill_gradient(Rect r, Rgb888 top, Rgb888 bottom) {
  const Rect c = r.intersect(fb_->bounds());
  if (c.empty()) return;
  for (int y = c.y; y < c.bottom(); ++y) {
    const double t =
        r.height <= 1 ? 0.0 : static_cast<double>(y - r.y) / (r.height - 1);
    const Rgb888 col{
        static_cast<std::uint8_t>(top.r + t * (bottom.r - top.r)),
        static_cast<std::uint8_t>(top.g + t * (bottom.g - top.g)),
        static_cast<std::uint8_t>(top.b + t * (bottom.b - top.b))};
    auto row = fb_->row(y);
    fill_span(row.data() + c.x, static_cast<std::size_t>(c.width), col);
  }
  mark(c);
}

void Canvas::draw_text_block(Rect r, Rgb888 fg, Rgb888 bg,
                             std::uint32_t seed) {
  const Rect c = r.intersect(fb_->bounds());
  if (c.empty()) return;
  fb_->fill_rect(c, bg);
  // Simulate lines of text as short fg runs; a simple LCG keyed by `seed`
  // varies run lengths so distinct strings yield distinct pixels.  The runs
  // of a line are generated once into a span list, then painted row by row:
  // the words of a line share their scanlines, so this walks the buffer in
  // row-major order with one fill per run instead of one clipped fill_rect
  // per word -- pixel output is unchanged (runs are disjoint; all lie
  // inside `c`).
  std::uint32_t state = seed * 2654435761u + 12345u;
  const int line_height = 14;
  const int glyph_height = 9;
  std::vector<std::pair<int, int>> runs;  // [x, end) per word of one line
  for (int ly = c.y + 3; ly + glyph_height <= c.bottom(); ly += line_height) {
    runs.clear();
    int x = c.x + 4;
    while (x < c.right() - 4) {
      state = state * 1664525u + 1013904223u;
      const int run = 3 + static_cast<int>(state % 23);   // word width
      const int gap = 3 + static_cast<int>((state >> 8) % 6);
      const int end = std::min(x + run, c.right() - 4);
      if (end > x) runs.emplace_back(x, end);
      x = end + gap;
    }
    // Paint the runs once, then replicate the scanline: every row of a
    // glyph line is identical (runs and the background between them), so
    // the other rows are straight copies of the first.
    if (runs.empty()) continue;
    auto first = fb_->row(ly);
    for (const auto& [rx, rend] : runs) {
      fill_span(first.data() + rx, static_cast<std::size_t>(rend - rx), fg);
    }
    const int span_x = runs.front().first;
    const int span_end = runs.back().second;
    for (int y = ly + 1; y < ly + glyph_height; ++y) {
      auto row = fb_->row(y);
      std::memcpy(row.data() + span_x, first.data() + span_x,
                  static_cast<std::size_t>(span_end - span_x) *
                      sizeof(Rgb888));
    }
  }
  mark(c);
}

void Canvas::draw_hline(int x0, int x1, int y, Rgb888 c) {
  fill_rect(Rect{std::min(x0, x1), y, std::abs(x1 - x0) + 1, 1}, c);
}

void Canvas::draw_vline(int x, int y0, int y1, Rgb888 c) {
  fill_rect(Rect{x, std::min(y0, y1), 1, std::abs(y1 - y0) + 1}, c);
}

void Canvas::draw_frame(Rect r, int thickness, Rgb888 c) {
  if (r.empty() || thickness <= 0) return;
  fill_rect(Rect{r.x, r.y, r.width, thickness}, c);
  fill_rect(Rect{r.x, r.bottom() - thickness, r.width, thickness}, c);
  fill_rect(Rect{r.x, r.y, thickness, r.height}, c);
  fill_rect(Rect{r.right() - thickness, r.y, thickness, r.height}, c);
}

void Canvas::blit(const Framebuffer& src, Rect src_rect, Point dst) {
  fb_->blit(src, src_rect, dst);
  mark(Rect{dst.x, dst.y, src_rect.width, src_rect.height});
}

void Canvas::scroll_up(Rect region, int dy) {
  fb_->scroll_up(region, dy);
  mark(region);
}

void Canvas::shift(Rect region, int dx, int dy) {
  fb_->shift(region, dx, dy);
  mark(region);
}

}  // namespace ccdem::gfx
