// Fast 64-bit content hashing for tile memoization and frame fingerprints.
//
// Requirements, in order:
//   1. Deterministic and platform/kernel-variant independent -- the hash
//      feeds counters and oracle fields that must match between forced
//      scalar and SIMD runs, serial and fleet, Linux and anywhere else.
//      So: scalar-only, u64-chunked, no dispatch.
//   2. Fast enough to run over every composed tile (an order of magnitude
//      faster than the old byte-at-a-time FNV-1a content_hash).
//   3. Well mixed.  NOT required to be collision-free: every memoization
//      hit is re-verified byte-for-byte, so a collision costs one compare,
//      never correctness (and the DST collision-injection test forces the
//      degenerate constant hash to prove it).
//
// The bulk loop runs four independent 64-bit lanes, one multiply per
// 8-byte chunk.  A single chained splitmix stream is latency-bound (two
// dependent multiplies per chunk, ~2 GB/s); four chains keep the multiplier
// pipeline full and run at memory speed, while remaining plain scalar code
// that hashes bit-identically on every platform and kernel variant.  The
// splitmix64 finalizer folds the lanes (and seeds them) so the weaker
// per-lane mix never reaches a consumer unfinalized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "gfx/geometry.h"
#include "gfx/pixel.h"

namespace ccdem::gfx {

namespace hash_detail {

inline std::uint64_t mix(std::uint64_t h, std::uint64_t k) {
  h ^= k;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

/// Four independent lane states; chunks feed lanes round-robin so the four
/// multiply chains never depend on each other inside the bulk loop.
struct Lanes {
  std::uint64_t l0, l1, l2, l3;

  explicit Lanes(std::uint64_t seed)
      : l0(mix(seed, 1)), l1(mix(seed, 2)), l2(mix(seed, 3)),
        l3(mix(seed, 4)) {}

  static constexpr std::uint64_t kMul = 0x9DDFEA08EB382D69ull;

  inline void bulk(const unsigned char* p, std::size_t n) {
    std::uint64_t k0, k1, k2, k3;
    while (n >= 32) {
      std::memcpy(&k0, p, 8);
      std::memcpy(&k1, p + 8, 8);
      std::memcpy(&k2, p + 16, 8);
      std::memcpy(&k3, p + 24, 8);
      l0 = (l0 ^ k0) * kMul;
      l1 = (l1 ^ k1) * kMul;
      l2 = (l2 ^ k2) * kMul;
      l3 = (l3 ^ k3) * kMul;
      p += 32;
      n -= 32;
    }
    std::uint64_t k = 0;
    while (n >= 8) {
      std::memcpy(&k, p, 8);
      l0 = (l0 ^ k) * kMul;
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      k = 0;
      std::memcpy(&k, p, n);
      // Fold the tail length in so "abc" and "abc\0" cannot collide
      // trivially.
      l1 = (l1 ^ k ^ (static_cast<std::uint64_t>(n) << 56)) * kMul;
    }
  }

  [[nodiscard]] inline std::uint64_t fold(std::uint64_t h) const {
    return mix(mix(mix(mix(h, l0), l1), l2), l3);
  }
};

}  // namespace hash_detail

inline constexpr std::uint64_t kHashSeed = 0x9E3779B97F4A7C15ull;

/// Hashes `n` raw bytes into (and continuing from) state `h`.  Chaining
/// calls row by row hashes a rect without copying it contiguous first.
[[nodiscard]] inline std::uint64_t hash_bytes(const void* data, std::size_t n,
                                              std::uint64_t h = kHashSeed) {
  hash_detail::Lanes lanes(h);
  lanes.bulk(static_cast<const unsigned char*>(data), n);
  return lanes.fold(h);
}

/// Folds one u64 into the running state -- for combining per-tile or
/// per-frame hashes into a stream fingerprint.
[[nodiscard]] inline std::uint64_t hash_combine(std::uint64_t h,
                                                std::uint64_t k) {
  return hash_detail::mix(h, k);
}

/// Hashes rect `r` of a row-major pixel buffer (`stride` in pixels).  Row
/// geometry (width + height) is folded in via the per-row byte count and the
/// chained state, so transposed rects of equal area hash differently.
[[nodiscard]] inline std::uint64_t hash_rows(const Rgb888* base, int stride,
                                             Rect r,
                                             std::uint64_t h = kHashSeed) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  h = hash_detail::mix(h, (static_cast<std::uint64_t>(r.width) << 32) |
                              static_cast<std::uint64_t>(r.height));
  // One lane state across the whole rect: rows feed the same four chains,
  // so the per-row cost is the bulk loop alone, not a seed+finalize round.
  hash_detail::Lanes lanes(h);
  for (int row = 0; row < r.height; ++row) {
    const Rgb888* p =
        base + static_cast<std::size_t>(r.y + row) * stride + r.x;
    lanes.bulk(reinterpret_cast<const unsigned char*>(p), bytes);
  }
  return lanes.fold(h);
}

}  // namespace ccdem::gfx
