// Integer screen-space geometry: points, sizes, and axis-aligned rectangles.
//
// Rectangles are half-open: [x, x+w) x [y, y+h).  An empty rect has zero
// width or height; unions and intersections normalise to the canonical empty
// rect {0,0,0,0} where possible.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>

namespace ccdem::gfx {

struct Point {
  int x = 0;
  int y = 0;
  constexpr auto operator<=>(const Point&) const = default;
};

struct Size {
  int width = 0;
  int height = 0;
  constexpr auto operator<=>(const Size&) const = default;
  [[nodiscard]] constexpr std::int64_t area() const {
    return static_cast<std::int64_t>(width) * height;
  }
  [[nodiscard]] constexpr bool empty() const {
    return width <= 0 || height <= 0;
  }
};

struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  constexpr auto operator<=>(const Rect&) const = default;

  [[nodiscard]] constexpr bool empty() const {
    return width <= 0 || height <= 0;
  }
  [[nodiscard]] constexpr std::int64_t area() const {
    return empty() ? 0 : static_cast<std::int64_t>(width) * height;
  }
  [[nodiscard]] constexpr int right() const { return x + width; }
  [[nodiscard]] constexpr int bottom() const { return y + height; }

  [[nodiscard]] constexpr bool contains(Point p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }

  [[nodiscard]] constexpr Rect intersect(const Rect& o) const {
    const int nx = std::max(x, o.x);
    const int ny = std::max(y, o.y);
    const int nr = std::min(right(), o.right());
    const int nb = std::min(bottom(), o.bottom());
    if (nr <= nx || nb <= ny) return Rect{};
    return Rect{nx, ny, nr - nx, nb - ny};
  }

  /// Smallest rect containing both (bounding union).
  [[nodiscard]] constexpr Rect join(const Rect& o) const {
    if (empty()) return o.empty() ? Rect{} : o;
    if (o.empty()) return *this;
    const int nx = std::min(x, o.x);
    const int ny = std::min(y, o.y);
    const int nr = std::max(right(), o.right());
    const int nb = std::max(bottom(), o.bottom());
    return Rect{nx, ny, nr - nx, nb - ny};
  }

  [[nodiscard]] constexpr Rect translated(int dx, int dy) const {
    return Rect{x + dx, y + dy, width, height};
  }

  [[nodiscard]] static constexpr Rect of(Size s) {
    return Rect{0, 0, s.width, s.height};
  }
};

}  // namespace ccdem::gfx
