// Kernel table selection: CPUID detection, the CCDEM_KERNEL override, and
// the registry of variants compiled into this binary.
//
// Selection happens once, on the first dispatched call, and is strict about
// the override: naming a variant the build or the CPU cannot run aborts
// instead of silently falling back, so a CI matrix leg labelled
// CCDEM_KERNEL=avx2 either tests AVX2 or fails loudly.
#include "gfx/compare.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ccdem::gfx::kernels {

namespace {

constexpr KernelOps kScalarOps{
    "scalar",        &scalar::copy_rows,  &scalar::rows_equal,
    &scalar::rows_equal_offset, &scalar::first_diff, &scalar::gather,
};

#if defined(__x86_64__) || defined(__i386__)
bool cpu_has_sse2() { return __builtin_cpu_supports("sse2"); }
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2"); }
#else
bool cpu_has_sse2() { return false; }
bool cpu_has_avx2() { return false; }
#endif

std::vector<const KernelOps*> build_available() {
  std::vector<const KernelOps*> v{&kScalarOps};
#if defined(__x86_64__) || defined(__i386__)
  if (cpu_has_sse2()) v.push_back(&sse2_kernels());
  if (cpu_has_avx2()) v.push_back(&avx2_kernels());
#elif defined(__ARM_NEON)
  v.push_back(&neon_kernels());
#endif
  return v;
}

}  // namespace

const KernelOps& scalar_kernels() { return kScalarOps; }

const std::vector<const KernelOps*>& available_kernels() {
  static const std::vector<const KernelOps*> v = build_available();
  return v;
}

const KernelOps* find_kernels(std::string_view name) {
  for (const KernelOps* ops : available_kernels()) {
    if (name == ops->name) return ops;
  }
  return nullptr;
}

namespace detail {

std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* resolve_and_cache() {
  static std::once_flag once;
  std::call_once(once, [] {
    const KernelOps* pick = nullptr;
    if (const char* forced = std::getenv("CCDEM_KERNEL");
        forced != nullptr && forced[0] != '\0') {
      pick = find_kernels(forced);
      if (pick == nullptr) {
        std::fprintf(stderr,
                     "CCDEM_KERNEL=%s: unknown or unsupported kernel variant "
                     "on this CPU (available:",
                     forced);
        for (const KernelOps* ops : available_kernels()) {
          std::fprintf(stderr, " %s", ops->name);
        }
        std::fprintf(stderr, ")\n");
        std::abort();
      }
    } else {
      // Widest available wins; available_kernels() lists narrow to wide.
      pick = available_kernels().back();
    }
    g_active.store(pick, std::memory_order_relaxed);
  });
  return g_active.load(std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace ccdem::gfx::kernels
