// NEON row-span kernels -- the ARM leg of the dispatch table.  No ARM build
// exists yet, so this is the stub the table shape demands: the variant is
// listed and selectable only when __ARM_NEON is defined, and until then the
// implementation simply forwards to the scalar reference so a future port
// starts from a correct (if unoptimised) baseline.
#if defined(__ARM_NEON)

#include "gfx/compare.h"

namespace ccdem::gfx::kernels {

namespace {

constexpr KernelOps kNeonOps{
    "neon",        &scalar::copy_rows,  &scalar::rows_equal,
    &scalar::rows_equal_offset, &scalar::first_diff, &scalar::gather,
};

}  // namespace

const KernelOps& neon_kernels() { return kNeonOps; }

}  // namespace ccdem::gfx::kernels

#endif  // __ARM_NEON
