// PPM (P6) framebuffer dump -- the simulator's screenshot facility.
//
// Useful for eyeballing what a scene actually renders and for documenting
// workloads; every image viewer and test harness can read binary PPM.
#pragma once

#include <iosfwd>
#include <string>

#include "gfx/framebuffer.h"

namespace ccdem::gfx {

/// Writes `fb` as a binary PPM (P6) image.
void write_ppm(std::ostream& os, const Framebuffer& fb);

/// Writes to a file; returns false if the file could not be opened.
bool write_ppm_file(const std::string& path, const Framebuffer& fb);

/// Reads a binary PPM (P6) image previously written by write_ppm.
/// Returns an empty framebuffer on malformed input.
[[nodiscard]] Framebuffer read_ppm(std::istream& is);

}  // namespace ccdem::gfx
