#include "gfx/ppm.h"

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace ccdem::gfx {

static_assert(sizeof(Rgb888) == 3, "PPM I/O relies on packed RGB triples");

void write_ppm(std::ostream& os, const Framebuffer& fb) {
  os << "P6\n" << fb.width() << " " << fb.height() << "\n255\n";
  // Rgb888 is three tightly packed bytes; write row by row.
  for (int y = 0; y < fb.height(); ++y) {
    const auto row = fb.row(y);
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size() * sizeof(Rgb888)));
  }
}

bool write_ppm_file(const std::string& path, const Framebuffer& fb) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_ppm(os, fb);
  return static_cast<bool>(os);
}

Framebuffer read_ppm(std::istream& is) {
  std::string magic;
  int width = 0, height = 0, maxval = 0;
  is >> magic >> width >> height >> maxval;
  if (magic != "P6" || width <= 0 || height <= 0 || maxval != 255) {
    return Framebuffer{};
  }
  is.get();  // single whitespace after the header
  Framebuffer fb(width, height);
  for (int y = 0; y < height; ++y) {
    auto row = fb.row(y);
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(Rgb888)));
  }
  if (!is) return Framebuffer{};
  return fb;
}

}  // namespace ccdem::gfx
