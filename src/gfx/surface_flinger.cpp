#include "gfx/surface_flinger.h"

#include <algorithm>
#include <cassert>

#include "gfx/compare.h"

namespace ccdem::gfx {

SurfaceFlinger::SurfaceFlinger(Size screen, BufferPool* pool)
    : screen_(screen),
      pool_(pool),
      chain_(screen, pool),
      tiles_(screen),
      frame_ring_(kFrameRing, 0) {
  assert(!screen.empty());
}

Surface* SurfaceFlinger::create_surface(std::string name, Rect screen_rect,
                                        int z_order) {
  auto s =
      std::make_unique<Surface>(std::move(name), screen_rect, z_order, pool_);
  Surface* raw = s.get();
  surfaces_.push_back(std::move(s));
  std::stable_sort(surfaces_.begin(), surfaces_.end(),
                   [](const auto& a, const auto& b) {
                     return a->z_order() < b->z_order();
                   });
  return raw;
}

void SurfaceFlinger::remove_surface(Surface* s) {
  std::erase_if(surfaces_, [s](const auto& p) { return p.get() == s; });
}

void SurfaceFlinger::set_obs(obs::ObsSink* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    ctr_frames_ = ctr_content_ = ctr_redundant_ = ctr_pixels_ = ctr_latched_ =
        ctr_memo_written_ = ctr_memo_skipped_ = ctr_memo_tile_hits_ =
            ctr_memo_collisions_ = ctr_memo_frames_ = ctr_memo_repeats_ =
                nullptr;
    return;
  }
  ctr_frames_ = &obs_->counters.counter("flinger.frames_composed");
  ctr_content_ = &obs_->counters.counter("flinger.content_frames");
  ctr_redundant_ = &obs_->counters.counter("flinger.redundant_frames");
  ctr_pixels_ = &obs_->counters.counter("flinger.pixels_composed");
  ctr_latched_ = &obs_->counters.counter("flinger.surfaces_latched");
  // Physical-write accounting.  Registered whether or not memoization is on
  // so every run exposes the same counter set; the memo oracle excludes the
  // "flinger.memo." prefix when diffing on-vs-off runs.
  ctr_memo_written_ = &obs_->counters.counter("flinger.memo.pixels_written");
  ctr_memo_skipped_ = &obs_->counters.counter("flinger.memo.pixels_skipped");
  ctr_memo_tile_hits_ = &obs_->counters.counter("flinger.memo.tile_hits");
  ctr_memo_collisions_ =
      &obs_->counters.counter("flinger.memo.tile_collisions");
  ctr_memo_frames_ = &obs_->counters.counter("flinger.memo.frames_memoized");
  ctr_memo_repeats_ = &obs_->counters.counter("flinger.memo.frame_repeats");
}

bool SurfaceFlinger::region_differs(const Surface& s, Rect dirty) const {
  // `dirty` is surface-local; translate into screen space and compare the
  // surface's pixels with what is currently on screen (the front buffer),
  // row span against row span.
  const Framebuffer& displayed = chain_.front();
  const int sx = s.screen_rect().x;
  const int sy = s.screen_rect().y;
  const Rect screen_rect =
      dirty.translated(sx, sy).intersect(Rect::of(screen_));
  if (screen_rect.empty()) return false;
  const Rect local = screen_rect.translated(-sx, -sy);
  return !kernels::rows_equal_offset(
      s.buffer().pixels().data(), s.buffer().width(), local,
      displayed.pixels().data(), displayed.width(),
      Point{screen_rect.x, screen_rect.y});
}

bool SurfaceFlinger::compose_rect_memo(const Surface& s, Rect screen_rect,
                                       Framebuffer& target, FrameInfo& info,
                                       Region& damage) {
  // The rect is walked tile by tile.  For every tile intersection the write
  // is elided when the surface bytes already match the back buffer -- which
  // begin_frame reconciled to the displayed frame, so "matches the back" is
  // "already on screen" until an earlier rect of this same frame overwrote
  // it, in which case matching the back still yields the correct final
  // frame.  Full tiles go through the hash cache first: a differing hash
  // proves a change without touching pixels, an equal hash is verified
  // byte-for-byte before the write is skipped (collisions are counted, not
  // trusted).
  //
  // content_changed stays *exact* under this scheme: before the first write
  // of a frame the back buffer equals the front everywhere, so "some tile
  // write happened" is equivalent to the old region_differs-vs-front check.
  const Framebuffer& src = s.buffer();
  const int sx = s.screen_rect().x;
  const int sy = s.screen_rect().y;
  bool wrote = false;

  const int tx0 = screen_rect.x / TileCache::kTileSize;
  const int tx1 = (screen_rect.right() - 1) / TileCache::kTileSize;
  const int ty0 = screen_rect.y / TileCache::kTileSize;
  const int ty1 = (screen_rect.bottom() - 1) / TileCache::kTileSize;

  // Written pieces are merged back into maximal rects before they reach the
  // copy, the dirty bound and the damage region: adjacent writes in a tile
  // row grow `run`, and full-width runs stack vertically into `block`.  A
  // fully-written rect therefore costs one copy and one damage rect, exactly
  // like the memo-off path, instead of one per tile.
  Rect run{};    // pending horizontal run within the current tile row
  Rect block{};  // pending vertical stack of flushed runs
  const auto emit = [&](const Rect& r) {
    if (r.empty()) return;
    kernels::copy_rows(
        target.pixels_mut().data(), target.width(), src.pixels().data(),
        src.width(),
        kernels::CopyWindow{Point{r.x - sx, r.y - sy}, Point{r.x, r.y},
                            Size{r.width, r.height}});
    info.dirty = info.dirty.join(r);
    damage.add(r);
    memo_.pixels_written += static_cast<std::uint64_t>(r.area());
    wrote = true;
  };
  const auto flush_run = [&]() {
    if (run.empty()) return;
    if (block.x == run.x && block.width == run.width &&
        block.bottom() == run.y) {
      block.height += run.height;
    } else {
      emit(block);
      block = run;
    }
    run = Rect{};
  };

  for (int ty = ty0; ty <= ty1; ++ty) {
    for (int tx = tx0; tx <= tx1; ++tx) {
      const Rect tile = tiles_.tile_rect(tx, ty);
      const Rect tr = tile.intersect(screen_rect);
      if (tr.empty()) continue;
      const std::size_t ti = tiles_.index(tx, ty);
      const Rect local = tr.translated(-sx, -sy);
      const bool full_tile = tr == tile;

      bool write = false;
      if (full_tile) {
        // Hash the src span (one read of src, no target access), then let
        // the cache classify the tile:
        //  - hash match on a valid entry: probably unchanged; verify the
        //    bytes before skipping, so a collision costs one compare and
        //    never correctness.
        //  - hash miss on a valid entry: provably changed.  The stored hash
        //    describes the bytes this tile holds on screen (stored at its
        //    last full-tile compose, invalidated by partial overwrites, and
        //    the back buffer is reconciled to the front), and the hash is a
        //    pure function of the bytes -- equal bytes cannot hash apart.
        //    So copy straight away, without reading the target at all.
        //  - no valid entry: fall back to the byte compare.
        const std::uint64_t h =
            tiles_.span_hash(src.pixels().data(), src.width(), local);
        if (tiles_.valid(ti) && h == tiles_.hash(ti)) {
          const bool equal = kernels::rows_equal_offset(
              src.pixels().data(), src.width(), local, target.pixels().data(),
              target.width(), Point{tr.x, tr.y});
          write = !equal;
          ++(equal ? memo_.tile_hits : memo_.tile_collisions);
        } else if (tiles_.valid(ti)) {
          write = true;
        } else {
          write = !kernels::rows_equal_offset(
              src.pixels().data(), src.width(), local, target.pixels().data(),
              target.width(), Point{tr.x, tr.y});
        }
        // Whether written or verified equal, the tile now holds exactly the
        // bytes that hash to h.
        tiles_.store(ti, h);
      } else {
        write = !kernels::rows_equal_offset(
            src.pixels().data(), src.width(), local, target.pixels().data(),
            target.width(), Point{tr.x, tr.y});
        // A partial overwrite leaves the rest of the tile as-is: equal bytes
        // keep the cached hash truthful, a write makes it stale.
        if (write) tiles_.invalidate(ti);
      }

      if (write) {
        if (!run.empty() && run.y == tr.y && run.height == tr.height &&
            run.right() == tr.x) {
          run.width += tr.width;
        } else {
          flush_run();
          run = tr;
        }
      } else {
        flush_run();
        memo_.pixels_skipped += static_cast<std::uint64_t>(tr.area());
      }
    }
    flush_run();
  }
  emit(block);
  return wrote;
}

bool SurfaceFlinger::on_vsync(sim::Time t) {
  bool any_pending = false;
  for (const auto& s : surfaces_) {
    if (s->visible() && s->has_pending_frame()) {
      any_pending = true;
      break;
    }
  }
  if (!any_pending) return false;

  FrameInfo info;
  info.seq = ++frame_seq_;
  info.composed_at = t;

  // Render into the swapchain's back buffer (reconciled to the previous
  // frame by begin_frame); the front buffer keeps displaying frame N-1 and
  // doubles as the comparison reference.
  Framebuffer& target = chain_.begin_frame();
  info.reconciled_pixels = chain_.last_reconciled_pixels();

  const MemoStats memo_before = memo_;
  bool any_dirty = false;
  Region damage;
  for (const auto& s : surfaces_) {
    if (!s->visible() || !s->has_pending_frame()) continue;
    ++info.surfaces_latched;
    const Region local_dirty = s->pending_dirty_region();
    s->acquire_frame();
    if (local_dirty.empty()) continue;  // redundant frame: nothing to copy
    any_dirty = true;

    // Compose rect by rect so only pixels actually drawn are copied and
    // charged -- scattered sprite updates do not pay for the area between
    // them.
    for (const Rect& local_rect : local_dirty.rects()) {
      if (!exact_change_) info.content_changed = true;
      const Rect screen_rect =
          local_rect.translated(s->screen_rect().x, s->screen_rect().y)
              .intersect(Rect::of(screen_));
      // Logical composition work is charged whether or not the pixels turn
      // out to be redundant -- the app drew them; memoization only decides
      // whether they must physically land.
      info.composed_pixels += screen_rect.area();
      if (screen_rect.empty()) continue;

      if (tile_memo_) {
        if (compose_rect_memo(*s, screen_rect, target, info, damage) &&
            exact_change_) {
          info.content_changed = true;
        }
      } else {
        if (exact_change_ && !info.content_changed &&
            region_differs(*s, local_rect)) {
          info.content_changed = true;
        }
        const Point dst{s->screen_rect().x + local_rect.x,
                        s->screen_rect().y + local_rect.y};
        target.blit(s->buffer(), local_rect, dst);
        info.dirty = info.dirty.join(screen_rect);
        memo_.pixels_written += static_cast<std::uint64_t>(screen_rect.area());
        damage.add(screen_rect);
      }
    }
  }

  if (tile_memo_) {
    // Whole-frame memoization observability: a frame that latched real dirt
    // but wrote nothing was entirely redundant, and once every tile hash is
    // warm the folded fingerprint spots exact repeats of earlier frames
    // (video loops, wallpaper periods) at O(tiles) cost.
    if (any_dirty && memo_.pixels_written == memo_before.pixels_written) {
      ++memo_.frames_memoized;
    }
    if (tiles_.all_valid()) {
      const std::uint64_t fp = tiles_.fold();
      for (std::uint64_t old : frame_ring_) {
        if (old == fp) {
          ++memo_.frame_repeats;
          break;
        }
      }
      frame_ring_[frame_ring_next_] = fp;
      frame_ring_next_ = (frame_ring_next_ + 1) % frame_ring_.size();
    }
  }

  chain_.present(damage);
  info.damage = std::move(damage);

  if (info.content_changed) ++content_frames_;

  if (obs_ != nullptr) {
    ++*ctr_frames_;
    ++*(info.content_changed ? ctr_content_ : ctr_redundant_);
    *ctr_pixels_ += static_cast<std::uint64_t>(info.composed_pixels);
    *ctr_latched_ += static_cast<std::uint64_t>(info.surfaces_latched);
    *ctr_memo_written_ += memo_.pixels_written - memo_before.pixels_written;
    *ctr_memo_skipped_ += memo_.pixels_skipped - memo_before.pixels_skipped;
    *ctr_memo_tile_hits_ += memo_.tile_hits - memo_before.tile_hits;
    *ctr_memo_collisions_ +=
        memo_.tile_collisions - memo_before.tile_collisions;
    *ctr_memo_frames_ += memo_.frames_memoized - memo_before.frames_memoized;
    *ctr_memo_repeats_ += memo_.frame_repeats - memo_before.frame_repeats;
  }
  CCDEM_OBS_SPAN(obs_, obs::Phase::kCompose, t, sim::Duration{}, info.seq,
                 info.composed_pixels);

  for (FrameListener* l : listeners_) l->on_frame(info, chain_.front());
  return true;
}

}  // namespace ccdem::gfx
