#include "gfx/surface_flinger.h"

#include <algorithm>
#include <cassert>

#include "gfx/compare.h"

namespace ccdem::gfx {

SurfaceFlinger::SurfaceFlinger(Size screen, BufferPool* pool)
    : screen_(screen), pool_(pool), chain_(screen, pool) {
  assert(!screen.empty());
}

Surface* SurfaceFlinger::create_surface(std::string name, Rect screen_rect,
                                        int z_order) {
  auto s =
      std::make_unique<Surface>(std::move(name), screen_rect, z_order, pool_);
  Surface* raw = s.get();
  surfaces_.push_back(std::move(s));
  std::stable_sort(surfaces_.begin(), surfaces_.end(),
                   [](const auto& a, const auto& b) {
                     return a->z_order() < b->z_order();
                   });
  return raw;
}

void SurfaceFlinger::remove_surface(Surface* s) {
  std::erase_if(surfaces_, [s](const auto& p) { return p.get() == s; });
}

void SurfaceFlinger::set_obs(obs::ObsSink* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    ctr_frames_ = ctr_content_ = ctr_redundant_ = ctr_pixels_ = ctr_latched_ =
        nullptr;
    return;
  }
  ctr_frames_ = &obs_->counters.counter("flinger.frames_composed");
  ctr_content_ = &obs_->counters.counter("flinger.content_frames");
  ctr_redundant_ = &obs_->counters.counter("flinger.redundant_frames");
  ctr_pixels_ = &obs_->counters.counter("flinger.pixels_composed");
  ctr_latched_ = &obs_->counters.counter("flinger.surfaces_latched");
}

bool SurfaceFlinger::region_differs(const Surface& s, Rect dirty) const {
  // `dirty` is surface-local; translate into screen space and compare the
  // surface's pixels with what is currently on screen (the front buffer),
  // row span against row span.
  const Framebuffer& displayed = chain_.front();
  const int sx = s.screen_rect().x;
  const int sy = s.screen_rect().y;
  const Rect screen_rect =
      dirty.translated(sx, sy).intersect(Rect::of(screen_));
  if (screen_rect.empty()) return false;
  const Rect local = screen_rect.translated(-sx, -sy);
  return !kernels::rows_equal_offset(
      s.buffer().pixels().data(), s.buffer().width(), local,
      displayed.pixels().data(), displayed.width(),
      Point{screen_rect.x, screen_rect.y});
}

bool SurfaceFlinger::on_vsync(sim::Time t) {
  bool any_pending = false;
  for (const auto& s : surfaces_) {
    if (s->visible() && s->has_pending_frame()) {
      any_pending = true;
      break;
    }
  }
  if (!any_pending) return false;

  FrameInfo info;
  info.seq = ++frame_seq_;
  info.composed_at = t;

  // Render into the swapchain's back buffer (reconciled to the previous
  // frame by begin_frame); the front buffer keeps displaying frame N-1 and
  // doubles as the comparison reference.
  Framebuffer& target = chain_.begin_frame();
  info.reconciled_pixels = chain_.last_reconciled_pixels();

  Region damage;
  for (const auto& s : surfaces_) {
    if (!s->visible() || !s->has_pending_frame()) continue;
    ++info.surfaces_latched;
    const Region local_dirty = s->pending_dirty_region();
    s->acquire_frame();
    if (local_dirty.empty()) continue;  // redundant frame: nothing to copy

    // Compose rect by rect so only pixels actually drawn are copied and
    // charged -- scattered sprite updates do not pay for the area between
    // them.
    for (const Rect& local_rect : local_dirty.rects()) {
      if (exact_change_ && !info.content_changed) {
        if (region_differs(*s, local_rect)) info.content_changed = true;
      } else if (!exact_change_) {
        info.content_changed = true;
      }

      const Point dst{s->screen_rect().x + local_rect.x,
                      s->screen_rect().y + local_rect.y};
      target.blit(s->buffer(), local_rect, dst);
      const Rect screen_rect =
          local_rect.translated(s->screen_rect().x, s->screen_rect().y)
              .intersect(Rect::of(screen_));
      info.dirty = info.dirty.join(screen_rect);
      info.composed_pixels += screen_rect.area();
      damage.add(screen_rect);
    }
  }
  chain_.present(damage);
  info.damage = std::move(damage);

  if (info.content_changed) ++content_frames_;

  if (obs_ != nullptr) {
    ++*ctr_frames_;
    ++*(info.content_changed ? ctr_content_ : ctr_redundant_);
    *ctr_pixels_ += static_cast<std::uint64_t>(info.composed_pixels);
    *ctr_latched_ += static_cast<std::uint64_t>(info.surfaces_latched);
  }
  CCDEM_OBS_SPAN(obs_, obs::Phase::kCompose, t, sim::Duration{}, info.seq,
                 info.composed_pixels);

  for (FrameListener* l : listeners_) l->on_frame(info, chain_.front());
  return true;
}

}  // namespace ccdem::gfx
