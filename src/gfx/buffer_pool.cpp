#include "gfx/buffer_pool.h"

#include <utility>

namespace ccdem::gfx {

std::vector<Rgb888> BufferPool::take(std::size_t n) {
  ++acquires_;
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].capacity() >= n) {
      ++reuses_;
      std::vector<Rgb888> v = std::move(free_[i]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
      return v;
    }
  }
  if (!free_.empty()) {
    // Undersized storage: reuse the vector object but count the inevitable
    // regrowth as an allocation.
    std::vector<Rgb888> v = std::move(free_.back());
    free_.pop_back();
    return v;
  }
  return {};
}

std::vector<Rgb888> BufferPool::acquire(std::size_t n, Rgb888 fill) {
  std::vector<Rgb888> v = take(n);
  // resize()'s value-initialisation is a memset; a non-black fill then
  // overwrites at copy bandwidth.  assign(n, fill) looped per 3-byte pixel.
  v.clear();
  v.resize(n);
  if (!(fill == Rgb888{})) fill_span(v.data(), n, fill);
  return v;
}

std::vector<Rgb888> BufferPool::acquire_reserved(std::size_t n) {
  std::vector<Rgb888> v = take(n);
  v.clear();
  v.reserve(n);
  return v;
}

void BufferPool::release(std::vector<Rgb888>&& v) {
  if (v.capacity() == 0 || free_.size() >= max_free_) return;
  free_.push_back(std::move(v));
}

std::size_t BufferPool::free_bytes() const {
  std::size_t total = 0;
  for (const auto& v : free_) total += v.capacity() * sizeof(Rgb888);
  return total;
}

}  // namespace ccdem::gfx
