#include "gfx/framebuffer.h"

#include <cassert>
#include <cstring>
#include <utility>

#include "gfx/buffer_pool.h"
#include "gfx/compare.h"
#include "gfx/hash.h"

namespace ccdem::gfx {

namespace {

/// Sized fill at copy bandwidth (resize value-initialisation compiles to a
/// memset; a non-black fill then overwrites via fill_span).  The element
/// loop this replaces dominated device construction cost.
void fill_pixels(std::vector<Rgb888>& v, std::size_t n, Rgb888 fill) {
  v.clear();
  v.resize(n);
  if (!(fill == Rgb888{})) fill_span(v.data(), n, fill);
}

}  // namespace

Framebuffer::Framebuffer(int width, int height, Rgb888 fill)
    : width_(width), height_(height) {
  assert(width >= 0 && height >= 0);
  fill_pixels(pixels_, static_cast<std::size_t>(width) * height, fill);
}

Framebuffer::Framebuffer(int width, int height, BufferPool* pool, Rgb888 fill)
    : width_(width), height_(height), pool_(pool) {
  assert(width >= 0 && height >= 0);
  const std::size_t n = static_cast<std::size_t>(width) * height;
  if (pool_ != nullptr) {
    pixels_ = pool_->acquire(n, fill);
  } else {
    fill_pixels(pixels_, n, fill);
  }
}

Framebuffer::~Framebuffer() {
  if (pool_ != nullptr) pool_->release(std::move(pixels_));
}

Framebuffer::Framebuffer(const Framebuffer& other)
    : width_(other.width_), height_(other.height_), pixels_(other.pixels_) {}

Framebuffer& Framebuffer::operator=(const Framebuffer& other) {
  // Keeps this buffer's own pool affiliation; only the pixels are copied.
  width_ = other.width_;
  height_ = other.height_;
  pixels_ = other.pixels_;
  return *this;
}

Framebuffer::Framebuffer(Framebuffer&& other) noexcept
    : width_(other.width_),
      height_(other.height_),
      pixels_(std::move(other.pixels_)),
      pool_(other.pool_) {
  other.width_ = 0;
  other.height_ = 0;
  other.pool_ = nullptr;
  other.pixels_.clear();
}

Framebuffer& Framebuffer::operator=(Framebuffer&& other) noexcept {
  std::swap(width_, other.width_);
  std::swap(height_, other.height_);
  std::swap(pixels_, other.pixels_);
  std::swap(pool_, other.pool_);
  return *this;
}

Rgb888 Framebuffer::at_clamped(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return colors::kBlack;
  return at(x, y);
}

void Framebuffer::fill(Rgb888 c) { fill_rect(bounds(), c); }

void Framebuffer::fill_rect(Rect r, Rgb888 c) {
  const Rect clipped = r.intersect(bounds());
  if (clipped.empty()) return;
  // Paint the first row, then replicate it downwards with memcpy: a 3-byte
  // struct store loop does not vectorise, but row replication runs at copy
  // bandwidth.  Same bytes either way.
  Rgb888* first =
      pixels_.data() + static_cast<std::size_t>(clipped.y) * width_ +
      clipped.x;
  fill_span(first, static_cast<std::size_t>(clipped.width), c);
  const std::size_t bytes =
      static_cast<std::size_t>(clipped.width) * sizeof(Rgb888);
  for (int y = clipped.y + 1; y < clipped.bottom(); ++y) {
    std::memcpy(pixels_.data() + static_cast<std::size_t>(y) * width_ +
                    clipped.x,
                first, bytes);
  }
}

void Framebuffer::blit(const Framebuffer& src, Rect src_rect, Point dst) {
  const kernels::CopyWindow w =
      kernels::clip_copy(src_rect, src.bounds(), dst, bounds());
  if (w.empty()) return;
  kernels::copy_rows(pixels_.data(), width_, src.pixels_.data(), src.width_,
                     w);
}

void Framebuffer::scroll_up(Rect region, int dy) {
  const Rect r = region.intersect(bounds());
  if (r.empty() || dy <= 0) return;
  if (dy >= r.height) return;  // everything scrolled away; nothing to move
  for (int y = r.y; y < r.bottom() - dy; ++y) {
    const Rgb888* from =
        pixels_.data() + static_cast<std::size_t>(y + dy) * width_ + r.x;
    Rgb888* to = pixels_.data() + static_cast<std::size_t>(y) * width_ + r.x;
    std::memmove(to, from, static_cast<std::size_t>(r.width) * sizeof(Rgb888));
  }
}

void Framebuffer::shift(Rect region, int dx, int dy) {
  const Rect r = region.intersect(bounds());
  if (r.empty() || (dx == 0 && dy == 0)) return;
  if (std::abs(dx) >= r.width || std::abs(dy) >= r.height) return;

  // Destination row y takes source row y - dy; iterate so sources are read
  // before being overwritten (top-down when content moves down, bottom-up
  // when it moves up).  Within a row memmove handles the horizontal overlap.
  const int copy_w = r.width - std::abs(dx);
  const int src_x = dx >= 0 ? r.x : r.x - dx;
  const int dst_x = dx >= 0 ? r.x + dx : r.x;
  const int y_begin = dy >= 0 ? r.bottom() - 1 : r.y;
  const int y_end = dy >= 0 ? r.y + dy - 1 : r.bottom() + dy;
  const int step = dy >= 0 ? -1 : 1;
  for (int y = y_begin; y != y_end; y += step) {
    const Rgb888* from =
        pixels_.data() + static_cast<std::size_t>(y - dy) * width_ + src_x;
    Rgb888* to = pixels_.data() + static_cast<std::size_t>(y) * width_ + dst_x;
    std::memmove(to, from, static_cast<std::size_t>(copy_w) * sizeof(Rgb888));
  }
}

bool Framebuffer::equals(const Framebuffer& other) const {
  if (width_ != other.width_ || height_ != other.height_) return false;
  return std::memcmp(pixels_.data(), other.pixels_.data(),
                     pixels_.size() * sizeof(Rgb888)) == 0;
}

bool Framebuffer::region_equals(const Framebuffer& other, Rect r) const {
  if (width_ != other.width_ || height_ != other.height_) return false;
  const Rect c = r.intersect(bounds());
  if (c.empty()) return true;
  return kernels::rows_equal(pixels_.data(), other.pixels_.data(), width_, c);
}

std::uint64_t Framebuffer::content_hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto* bytes = reinterpret_cast<const unsigned char*>(pixels_.data());
  const std::size_t n = pixels_.size() * sizeof(Rgb888);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::uint64_t Framebuffer::fast_hash() const {
  return hash_bytes(pixels_.data(), pixels_.size() * sizeof(Rgb888));
}

}  // namespace ccdem::gfx
