// Per-tile content-hash cache backing SurfaceFlinger's compose memoization.
//
// The screen is cut into 64x64 screen-space tiles (edge tiles clipped).  For
// each tile the cache remembers a 64-bit hash of the tile's content in the
// *next front buffer* -- i.e. what the back buffer holds after composition.
// The swapchain reconciles the back buffer to the front before each compose,
// so a surface rect whose hash matches the cached tile hash is *probably*
// already on screen; the flinger re-verifies the bytes before skipping the
// write, which keeps correctness independent of hash uniqueness (a collision
// costs one extra compare and is counted, never trusted).
//
// CCDEM_MEMO_COLLIDE=1 (read at construction) degrades the hash to a
// constant so every lookup collides -- the DST injection hook proving that
// colliding tiles are still detected as changed through the verify path.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "gfx/geometry.h"
#include "gfx/hash.h"
#include "gfx/pixel.h"

namespace ccdem::gfx {

class TileCache {
 public:
  static constexpr int kTileSize = 64;

  explicit TileCache(Size screen)
      : screen_(screen),
        tiles_x_((screen.width + kTileSize - 1) / kTileSize),
        tiles_y_((screen.height + kTileSize - 1) / kTileSize),
        hash_(static_cast<std::size_t>(tiles_x_) * tiles_y_, 0),
        valid_(hash_.size(), 0) {
    const char* collide = std::getenv("CCDEM_MEMO_COLLIDE");
    force_collisions_ = collide != nullptr && collide[0] == '1';
  }

  [[nodiscard]] int tiles_x() const { return tiles_x_; }
  [[nodiscard]] int tiles_y() const { return tiles_y_; }
  [[nodiscard]] bool force_collisions() const { return force_collisions_; }

  /// Screen-space rect of tile (tx, ty), clipped to the screen -- edge tiles
  /// are narrower/shorter, and "full tile" below means this clipped rect.
  [[nodiscard]] Rect tile_rect(int tx, int ty) const {
    return Rect{tx * kTileSize, ty * kTileSize, kTileSize, kTileSize}
        .intersect(Rect::of(screen_));
  }

  [[nodiscard]] std::size_t index(int tx, int ty) const {
    assert(tx >= 0 && tx < tiles_x_ && ty >= 0 && ty < tiles_y_);
    return static_cast<std::size_t>(ty) * tiles_x_ + tx;
  }

  [[nodiscard]] bool valid(std::size_t i) const { return valid_[i] != 0; }
  [[nodiscard]] std::uint64_t hash(std::size_t i) const { return hash_[i]; }

  void store(std::size_t i, std::uint64_t h) {
    hash_[i] = h;
    if (valid_[i] == 0) {
      valid_[i] = 1;
      ++valid_count_;
    }
  }

  /// Partial overwrite of unknown content: the cached hash no longer
  /// describes the whole tile.
  void invalidate(std::size_t i) {
    if (valid_[i] != 0) {
      valid_[i] = 0;
      --valid_count_;
    }
  }

  void reset() {
    std::fill(valid_.begin(), valid_.end(), 0);
    valid_count_ = 0;
  }

  /// True once every tile's hash describes its current content -- the
  /// precondition for folding a whole-frame fingerprint from tile hashes.
  [[nodiscard]] bool all_valid() const {
    return valid_count_ == static_cast<int>(valid_.size());
  }

  /// Whole-frame fingerprint from the tile hashes (only meaningful when
  /// all_valid()).  O(tiles), so cheap enough to run per frame.
  [[nodiscard]] std::uint64_t fold() const {
    std::uint64_t h = kHashSeed;
    for (std::uint64_t t : hash_) h = hash_combine(h, t);
    return h;
  }

  /// Hash of rect `r` in a pixel buffer, honouring the collision-injection
  /// mode (constant hash -> every comparison collides -> the verify path
  /// carries all correctness).
  [[nodiscard]] std::uint64_t span_hash(const Rgb888* base, int stride,
                                        Rect r) const {
    if (force_collisions_) return 0;
    return hash_rows(base, stride, r);
  }

 private:
  Size screen_;
  int tiles_x_;
  int tiles_y_;
  std::vector<std::uint64_t> hash_;
  std::vector<unsigned char> valid_;
  int valid_count_ = 0;
  bool force_collisions_ = false;
};

}  // namespace ccdem::gfx
