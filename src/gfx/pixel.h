// RGB888 pixel type used by framebuffers and surfaces.
//
// The Galaxy S3 panel the paper instruments is RGB; alpha is irrelevant to
// content-change detection, so we model 24-bit colour exactly.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ccdem::gfx {

struct Rgb888 {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  constexpr auto operator<=>(const Rgb888&) const = default;

  [[nodiscard]] constexpr std::uint32_t packed() const {
    return (static_cast<std::uint32_t>(r) << 16) |
           (static_cast<std::uint32_t>(g) << 8) |
           static_cast<std::uint32_t>(b);
  }

  static constexpr Rgb888 from_packed(std::uint32_t v) {
    return Rgb888{static_cast<std::uint8_t>((v >> 16) & 0xff),
                  static_cast<std::uint8_t>((v >> 8) & 0xff),
                  static_cast<std::uint8_t>(v & 0xff)};
  }

  /// Perceptual-ish luma in [0, 255] (integer Rec.601 weights).
  [[nodiscard]] constexpr int luma() const {
    return (299 * r + 587 * g + 114 * b) / 1000;
  }
};

/// Fills `n` pixels at `p` with `c` at copy bandwidth.  A per-element loop
/// over a 3-byte struct does not vectorise; uniform bytes collapse to one
/// memset, anything else seeds a pixel and doubles it with memcpy.
inline void fill_span(Rgb888* p, std::size_t n, Rgb888 c) {
  if (n == 0) return;
  if (c.r == c.g && c.g == c.b) {
    std::memset(static_cast<void*>(p), c.r, n * sizeof(Rgb888));
    return;
  }
  p[0] = c;
  std::size_t filled = 1;
  while (filled < n) {
    const std::size_t chunk = filled < n - filled ? filled : n - filled;
    std::memcpy(p + filled, p, chunk * sizeof(Rgb888));
    filled += chunk;
  }
}

namespace colors {
inline constexpr Rgb888 kBlack{0, 0, 0};
inline constexpr Rgb888 kWhite{255, 255, 255};
inline constexpr Rgb888 kRed{220, 40, 40};
inline constexpr Rgb888 kGreen{40, 200, 80};
inline constexpr Rgb888 kBlue{40, 80, 220};
inline constexpr Rgb888 kGray{128, 128, 128};
inline constexpr Rgb888 kDarkGray{40, 40, 40};
inline constexpr Rgb888 kLightGray{210, 210, 210};
inline constexpr Rgb888 kYellow{240, 210, 40};
}  // namespace colors

}  // namespace ccdem::gfx
