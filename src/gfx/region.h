// Region: a set of non-overlapping rectangles.
//
// Dirty tracking with a single bounding box overcounts badly when a frame
// touches scattered areas (a game erasing and redrawing sprites across the
// screen dirties the whole box between them).  SurfaceFlinger composes and
// accounts per-Region, so composition cost tracks the pixels actually
// touched -- the quantity the power model charges for.
//
// The representation keeps at most `kMaxRects` rectangles; adding beyond
// that coalesces the closest pair (by joined-area waste), so the region
// degrades gracefully toward a bounding box instead of growing unboundedly.
#pragma once

#include <cstdint>
#include <vector>

#include "gfx/geometry.h"

namespace ccdem::gfx {

class Region {
 public:
  static constexpr std::size_t kMaxRects = 16;

  Region() = default;
  explicit Region(Rect r) { add(r); }

  [[nodiscard]] bool empty() const { return rects_.empty(); }
  [[nodiscard]] const std::vector<Rect>& rects() const { return rects_; }

  /// Total covered area (rects are disjoint, so this is exact).
  [[nodiscard]] std::int64_t area() const;

  /// Bounding box of the whole region (empty rect if empty).
  [[nodiscard]] Rect bounds() const;

  /// Adds a rectangle.  Overlapping parts are not double-counted: the new
  /// rect is split against existing rects so the set stays disjoint.
  void add(Rect r);

  /// Adds every rect of another region.
  void add(const Region& other);

  /// Restricts the region to `clip`.
  void clip(Rect clip_rect);

  /// Translates every rect.
  void translate(int dx, int dy);

  [[nodiscard]] bool contains(Point p) const;

  /// True if `r` overlaps any rect of the region.
  [[nodiscard]] bool intersects(Rect r) const;

  void clear() { rects_.clear(); }

 private:
  /// Merges the pair of rects whose bounding join wastes the least area.
  void coalesce_one();

  std::vector<Rect> rects_;  // pairwise disjoint
};

}  // namespace ccdem::gfx
