// SurfaceFlinger: the Surface Manager of the simulated Android stack.
//
// On every V-Sync it latches pending surface frames (if any) and composes
// them into the device framebuffer, then notifies frame listeners -- the
// content-rate meter and the power model hang off this notification.  The
// composition is dirty-region based, matching how a real compositor avoids
// recopying unchanged pixels, and it optionally performs an exact
// changed-pixel check over the dirty region so experiments have pixel-true
// ground truth for "meaningful vs redundant frame".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gfx/framebuffer.h"
#include "gfx/geometry.h"
#include "gfx/region.h"
#include "gfx/surface.h"
#include "gfx/swapchain.h"
#include "gfx/tile_cache.h"
#include "obs/obs.h"
#include "sim/time.h"

namespace ccdem::gfx {

/// Metadata for one composed frame, delivered to FrameListeners.
struct FrameInfo {
  std::uint64_t seq = 0;        ///< monotonically increasing frame number
  sim::Time composed_at{};      ///< V-Sync timestamp of the composition
  Rect dirty{};                 ///< union of latched dirty rects (screen space)
  /// The exact composed damage (screen space, disjoint rects; dirty is its
  /// bounding box).  Contract: every pixel that differs from the previous
  /// frame lies inside it -- the swapchain reconciles the back buffer to the
  /// previous frame before composing, so pixels outside the damage are
  /// byte-identical to frame N-1.  Listeners (the content-rate meter) rely
  /// on this to scope their work to the damage.
  Region damage;
  bool content_changed = false; ///< ground truth: any pixel actually changed
  std::int64_t composed_pixels = 0;  ///< pixels copied during composition
  /// Pixels recopied to reconcile the age-2 back buffer before composing
  /// (double-buffering overhead; not charged as composition work).
  std::int64_t reconciled_pixels = 0;
  int surfaces_latched = 0;     ///< surfaces that had a pending frame
};

class FrameListener {
 public:
  virtual ~FrameListener() = default;
  /// Called after the framebuffer has been updated for this frame.
  virtual void on_frame(const FrameInfo& info, const Framebuffer& fb) = 0;
};

class SurfaceFlinger {
 public:
  /// `pool` (optional) recycles pixel storage for the swapchain and every
  /// surface created through create_surface; it must outlive the flinger.
  explicit SurfaceFlinger(Size screen, BufferPool* pool = nullptr);

  SurfaceFlinger(const SurfaceFlinger&) = delete;
  SurfaceFlinger& operator=(const SurfaceFlinger&) = delete;

  /// Creates a surface; the flinger keeps ownership, callers get a stable
  /// pointer valid for the flinger's lifetime.
  Surface* create_surface(std::string name, Rect screen_rect, int z_order);
  void remove_surface(Surface* s);

  void add_listener(FrameListener* l) { listeners_.push_back(l); }

  /// Composes pending surface frames, if any.  Returns true if a frame was
  /// produced (i.e. at least one surface had posted).  Called at V-Sync.
  bool on_vsync(sim::Time t);

  /// The frame currently on screen (the swapchain's front buffer).
  [[nodiscard]] const Framebuffer& framebuffer() const {
    return chain_.front();
  }
  /// The previously displayed frame -- the paper's "extra buffer", obtained
  /// for free from the flip.
  [[nodiscard]] const Framebuffer& previous_frame() const {
    return chain_.previous();
  }
  [[nodiscard]] Size screen_size() const { return screen_; }
  [[nodiscard]] std::uint64_t frames_composed() const { return frame_seq_; }
  [[nodiscard]] std::uint64_t content_frames() const {
    return content_frames_;
  }

  /// When true (default), `FrameInfo::content_changed` is computed by an
  /// exact pixel comparison over the dirty region; when false, a non-empty
  /// dirty region is assumed to change content (cheaper, optimistic).
  void set_exact_change_detection(bool on) { exact_change_ = on; }

  /// Enables (default) or disables tile-hash compose memoization.  With it
  /// on, dirty rects are composed tile by tile and rects whose bytes already
  /// match the reconciled back buffer are skipped -- no pixel write, no
  /// damage, so downstream meter compares and next-frame reconciliation skip
  /// them too.  Every hash hit is byte-verified, so the composed frames are
  /// byte-identical either way (the DST memo oracle holds this).  Off keeps
  /// the historical blit-everything path as the differential reference.
  void set_tile_memo(bool on) { tile_memo_ = on; }
  [[nodiscard]] bool tile_memo() const { return tile_memo_; }

  /// Physical-write accounting for the memoization layer.  Logical
  /// composition work (FrameInfo::composed_pixels, the power model's input)
  /// is unchanged by memoization; these count what actually hit memory.
  struct MemoStats {
    std::uint64_t pixels_written = 0;   ///< pixels physically copied
    std::uint64_t pixels_skipped = 0;   ///< pixels proven unchanged, not copied
    std::uint64_t tile_hits = 0;        ///< full-tile hash hits verified equal
    std::uint64_t tile_collisions = 0;  ///< hash matched but bytes differed
    std::uint64_t frames_memoized = 0;  ///< frames with dirt but zero writes
    std::uint64_t frame_repeats = 0;    ///< whole-frame fingerprint repeats
  };
  [[nodiscard]] const MemoStats& memo_stats() const { return memo_; }

  /// Attaches an observability sink (may be null to detach).  Registers the
  /// flinger's counters and emits a compose span per composed frame.
  void set_obs(obs::ObsSink* obs);

 private:
  /// Returns true if the pixels of `s` inside `dirty` (surface-local) differ
  /// from the currently displayed frame.
  [[nodiscard]] bool region_differs(const Surface& s, Rect dirty) const;

  /// Composes one dirty rect through the tile cache into `target` (the
  /// reconciled back buffer).  Returns true if any pixels were written.
  bool compose_rect_memo(const Surface& s, Rect screen_rect,
                         Framebuffer& target, FrameInfo& info, Region& damage);

  Size screen_;
  BufferPool* pool_;
  Swapchain chain_;
  std::vector<std::unique_ptr<Surface>> surfaces_;  // kept sorted by z-order
  std::vector<FrameListener*> listeners_;
  std::uint64_t frame_seq_ = 0;
  std::uint64_t content_frames_ = 0;
  bool exact_change_ = true;
  bool tile_memo_ = true;

  TileCache tiles_;
  MemoStats memo_;
  /// Ring of recent whole-frame fingerprints; 128 frames covers the video
  /// loop lengths the corpus exercises (96 frames at 24 fps).
  static constexpr std::size_t kFrameRing = 128;
  std::vector<std::uint64_t> frame_ring_;
  std::size_t frame_ring_next_ = 0;

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_frames_ = nullptr;
  std::uint64_t* ctr_content_ = nullptr;
  std::uint64_t* ctr_redundant_ = nullptr;
  std::uint64_t* ctr_pixels_ = nullptr;
  std::uint64_t* ctr_latched_ = nullptr;
  std::uint64_t* ctr_memo_written_ = nullptr;
  std::uint64_t* ctr_memo_skipped_ = nullptr;
  std::uint64_t* ctr_memo_tile_hits_ = nullptr;
  std::uint64_t* ctr_memo_collisions_ = nullptr;
  std::uint64_t* ctr_memo_frames_ = nullptr;
  std::uint64_t* ctr_memo_repeats_ = nullptr;
};

}  // namespace ccdem::gfx
