// SurfaceFlinger: the Surface Manager of the simulated Android stack.
//
// On every V-Sync it latches pending surface frames (if any) and composes
// them into the device framebuffer, then notifies frame listeners -- the
// content-rate meter and the power model hang off this notification.  The
// composition is dirty-region based, matching how a real compositor avoids
// recopying unchanged pixels, and it optionally performs an exact
// changed-pixel check over the dirty region so experiments have pixel-true
// ground truth for "meaningful vs redundant frame".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gfx/framebuffer.h"
#include "gfx/geometry.h"
#include "gfx/region.h"
#include "gfx/surface.h"
#include "gfx/swapchain.h"
#include "obs/obs.h"
#include "sim/time.h"

namespace ccdem::gfx {

/// Metadata for one composed frame, delivered to FrameListeners.
struct FrameInfo {
  std::uint64_t seq = 0;        ///< monotonically increasing frame number
  sim::Time composed_at{};      ///< V-Sync timestamp of the composition
  Rect dirty{};                 ///< union of latched dirty rects (screen space)
  /// The exact composed damage (screen space, disjoint rects; dirty is its
  /// bounding box).  Contract: every pixel that differs from the previous
  /// frame lies inside it -- the swapchain reconciles the back buffer to the
  /// previous frame before composing, so pixels outside the damage are
  /// byte-identical to frame N-1.  Listeners (the content-rate meter) rely
  /// on this to scope their work to the damage.
  Region damage;
  bool content_changed = false; ///< ground truth: any pixel actually changed
  std::int64_t composed_pixels = 0;  ///< pixels copied during composition
  /// Pixels recopied to reconcile the age-2 back buffer before composing
  /// (double-buffering overhead; not charged as composition work).
  std::int64_t reconciled_pixels = 0;
  int surfaces_latched = 0;     ///< surfaces that had a pending frame
};

class FrameListener {
 public:
  virtual ~FrameListener() = default;
  /// Called after the framebuffer has been updated for this frame.
  virtual void on_frame(const FrameInfo& info, const Framebuffer& fb) = 0;
};

class SurfaceFlinger {
 public:
  /// `pool` (optional) recycles pixel storage for the swapchain and every
  /// surface created through create_surface; it must outlive the flinger.
  explicit SurfaceFlinger(Size screen, BufferPool* pool = nullptr);

  SurfaceFlinger(const SurfaceFlinger&) = delete;
  SurfaceFlinger& operator=(const SurfaceFlinger&) = delete;

  /// Creates a surface; the flinger keeps ownership, callers get a stable
  /// pointer valid for the flinger's lifetime.
  Surface* create_surface(std::string name, Rect screen_rect, int z_order);
  void remove_surface(Surface* s);

  void add_listener(FrameListener* l) { listeners_.push_back(l); }

  /// Composes pending surface frames, if any.  Returns true if a frame was
  /// produced (i.e. at least one surface had posted).  Called at V-Sync.
  bool on_vsync(sim::Time t);

  /// The frame currently on screen (the swapchain's front buffer).
  [[nodiscard]] const Framebuffer& framebuffer() const {
    return chain_.front();
  }
  /// The previously displayed frame -- the paper's "extra buffer", obtained
  /// for free from the flip.
  [[nodiscard]] const Framebuffer& previous_frame() const {
    return chain_.previous();
  }
  [[nodiscard]] Size screen_size() const { return screen_; }
  [[nodiscard]] std::uint64_t frames_composed() const { return frame_seq_; }
  [[nodiscard]] std::uint64_t content_frames() const {
    return content_frames_;
  }

  /// When true (default), `FrameInfo::content_changed` is computed by an
  /// exact pixel comparison over the dirty region; when false, a non-empty
  /// dirty region is assumed to change content (cheaper, optimistic).
  void set_exact_change_detection(bool on) { exact_change_ = on; }

  /// Attaches an observability sink (may be null to detach).  Registers the
  /// flinger's counters and emits a compose span per composed frame.
  void set_obs(obs::ObsSink* obs);

 private:
  /// Returns true if the pixels of `s` inside `dirty` (surface-local) differ
  /// from the currently displayed frame.
  [[nodiscard]] bool region_differs(const Surface& s, Rect dirty) const;

  Size screen_;
  BufferPool* pool_;
  Swapchain chain_;
  std::vector<std::unique_ptr<Surface>> surfaces_;  // kept sorted by z-order
  std::vector<FrameListener*> listeners_;
  std::uint64_t frame_seq_ = 0;
  std::uint64_t content_frames_ = 0;
  bool exact_change_ = true;

  obs::ObsSink* obs_ = nullptr;
  std::uint64_t* ctr_frames_ = nullptr;
  std::uint64_t* ctr_content_ = nullptr;
  std::uint64_t* ctr_redundant_ = nullptr;
  std::uint64_t* ctr_pixels_ = nullptr;
  std::uint64_t* ctr_latched_ = nullptr;
};

}  // namespace ccdem::gfx
