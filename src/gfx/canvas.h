// Canvas: drawing operations over a framebuffer with dirty-region tracking.
//
// Scene renderers paint through a Canvas so every mutation is recorded as a
// dirty rectangle.  The compositor uses the accumulated dirty region to copy
// only changed pixels, and experiment harnesses use "dirty region empty" as
// cheap ground truth for "this frame is redundant".
#pragma once

#include "gfx/framebuffer.h"
#include "gfx/geometry.h"
#include "gfx/pixel.h"
#include "gfx/region.h"

namespace ccdem::gfx {

class Canvas {
 public:
  explicit Canvas(Framebuffer& fb) : fb_(&fb) {}

  [[nodiscard]] Framebuffer& framebuffer() { return *fb_; }
  [[nodiscard]] const Framebuffer& framebuffer() const { return *fb_; }
  [[nodiscard]] Size size() const { return fb_->size(); }

  /// Bounding box of everything drawn since the last take; the precise
  /// multi-rect set is `dirty_region()`.
  [[nodiscard]] Rect dirty() const { return dirty_.bounds(); }
  [[nodiscard]] const Region& dirty_region() const { return dirty_; }
  Rect take_dirty() { return take_dirty_region().bounds(); }
  Region take_dirty_region() {
    Region d = std::move(dirty_);
    dirty_.clear();
    return d;
  }

  void fill(Rgb888 c);
  void fill_rect(Rect r, Rgb888 c);
  void draw_circle(Point center, int radius, Rgb888 c);
  /// Vertical linear gradient across `r` from `top` to `bottom` colour.
  void fill_gradient(Rect r, Rgb888 top, Rgb888 bottom);
  /// A block of fake text: alternating glyph-ish runs on a background.
  /// `seed` varies the run pattern so different "strings" look different.
  void draw_text_block(Rect r, Rgb888 fg, Rgb888 bg, std::uint32_t seed);
  void draw_hline(int x0, int x1, int y, Rgb888 c);
  void draw_vline(int x, int y0, int y1, Rgb888 c);
  void draw_frame(Rect r, int thickness, Rgb888 c);
  void blit(const Framebuffer& src, Rect src_rect, Point dst);
  void scroll_up(Rect region, int dy);
  /// 2-D in-place shift (see Framebuffer::shift); marks the region dirty.
  void shift(Rect region, int dx, int dy);

  /// Marks `r` dirty without drawing.  For renderers that write through
  /// framebuffer() directly (per-pixel procedural fills) -- they remain
  /// responsible for marking everything they touch.
  void mark_dirty(Rect r) { mark(r); }

 private:
  void mark(Rect r) { dirty_.add(r.intersect(fb_->bounds())); }

  Framebuffer* fb_;
  Region dirty_;
};

}  // namespace ccdem::gfx
