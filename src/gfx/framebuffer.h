// A dense RGB888 pixel buffer.
//
// Used both for the device framebuffer (what the panel scans out and what
// the content-rate meter samples) and for per-application surfaces.  The
// Galaxy S3 configuration in the paper is 720x1280 (921.6K pixels).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gfx/geometry.h"
#include "gfx/pixel.h"

namespace ccdem::gfx {

class BufferPool;

class Framebuffer {
 public:
  Framebuffer() = default;
  Framebuffer(int width, int height, Rgb888 fill = colors::kBlack);
  explicit Framebuffer(Size size, Rgb888 fill = colors::kBlack)
      : Framebuffer(size.width, size.height, fill) {}

  /// Pool-backed variant: pixel storage is acquired from `pool` (may be
  /// null, which degrades to a plain allocation) and returned to it on
  /// destruction.  Contents start identical to the plain constructor's.
  Framebuffer(int width, int height, BufferPool* pool,
              Rgb888 fill = colors::kBlack);
  Framebuffer(Size size, BufferPool* pool, Rgb888 fill = colors::kBlack)
      : Framebuffer(size.width, size.height, pool, fill) {}

  ~Framebuffer();
  /// Copies are deep and never pool-backed (a copy may outlive the pool).
  Framebuffer(const Framebuffer& other);
  Framebuffer& operator=(const Framebuffer& other);
  /// Moves transfer the storage together with its pool affiliation.
  Framebuffer(Framebuffer&& other) noexcept;
  Framebuffer& operator=(Framebuffer&& other) noexcept;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] Size size() const { return {width_, height_}; }
  [[nodiscard]] Rect bounds() const { return Rect{0, 0, width_, height_}; }
  [[nodiscard]] std::int64_t pixel_count() const {
    return static_cast<std::int64_t>(width_) * height_;
  }

  /// Unchecked pixel access; (x, y) must be within bounds.
  [[nodiscard]] Rgb888 at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  void set(int x, int y, Rgb888 c) {
    pixels_[static_cast<std::size_t>(y) * width_ + x] = c;
  }

  /// Bounds-checked variant returning black for out-of-range coordinates.
  [[nodiscard]] Rgb888 at_clamped(int x, int y) const;

  [[nodiscard]] std::span<const Rgb888> row(int y) const {
    return {pixels_.data() + static_cast<std::size_t>(y) * width_,
            static_cast<std::size_t>(width_)};
  }
  [[nodiscard]] std::span<Rgb888> row(int y) {
    return {pixels_.data() + static_cast<std::size_t>(y) * width_,
            static_cast<std::size_t>(width_)};
  }
  [[nodiscard]] std::span<const Rgb888> pixels() const { return pixels_; }
  /// Mutable raw storage for callers that compose through the row-span
  /// kernels directly (the flinger's tile path); prefer blit/fill otherwise.
  [[nodiscard]] std::span<Rgb888> pixels_mut() { return pixels_; }

  void fill(Rgb888 c);
  /// Fills the intersection of `r` with the buffer bounds.
  void fill_rect(Rect r, Rgb888 c);

  /// Copies `src_rect` from `src` to position `dst` in this buffer, clipped
  /// to both buffers.
  void blit(const Framebuffer& src, Rect src_rect, Point dst);

  /// Scrolls the contents of `region` up by `dy` pixels (dy > 0), leaving the
  /// vacated band unchanged (callers repaint it).  Used by feed scenes.
  void scroll_up(Rect region, int dy);

  /// Shifts the contents of `region` by (dx, dy) in place (either sign);
  /// pixels shifted in from outside the region keep their old values
  /// (callers repaint the exposed bands).  Used by the 2-D panning scenes.
  void shift(Rect region, int dx, int dy);

  /// True iff every pixel matches (sizes must match too).
  [[nodiscard]] bool equals(const Framebuffer& other) const;
  /// True iff pixels inside `r` (clipped) all match.  Sizes must match.
  [[nodiscard]] bool region_equals(const Framebuffer& other, Rect r) const;

  /// FNV-1a hash over the raw pixel data; cheap change fingerprint in tests.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Fast 64-bit fingerprint of the whole buffer (gfx/hash.h mixer).  An
  /// order of magnitude quicker than content_hash; used for the per-frame
  /// stream hashes the DST oracles compare.  Deliberately a different
  /// algorithm so the two fingerprints cross-check each other in tests.
  [[nodiscard]] std::uint64_t fast_hash() const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb888> pixels_;
  BufferPool* pool_ = nullptr;  ///< storage owner on destruction, if any
};

}  // namespace ccdem::gfx
