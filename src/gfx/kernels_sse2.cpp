// SSE2 row-span kernels.  Byte-identical to kernels::scalar by construction
// (and by the differential tests + DST kernel oracle): every row is handled
// as a raw byte span -- Rgb888 is three packed bytes, so 16-byte chunks plus
// a memcmp/memcpy tail reproduce the scalar semantics exactly.
//
// Built with -msse2 via set_source_files_properties (a no-op on x86_64 where
// SSE2 is baseline, but it keeps the variant files uniform).
#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include <cstring>

#include "gfx/compare.h"

namespace ccdem::gfx::kernels {

namespace {

constexpr std::size_t kVec = 16;

inline const unsigned char* bytes_of(const Rgb888* p) {
  return reinterpret_cast<const unsigned char*>(p);
}
inline unsigned char* bytes_of(Rgb888* p) {
  return reinterpret_cast<unsigned char*>(p);
}

/// True iff `n` bytes match at `a` / `b`.
inline bool span_equal(const unsigned char* a, const unsigned char* b,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) != 0xFFFF) return false;
  }
  return i == n || std::memcmp(a + i, b + i, n - i) == 0;
}

/// Regular (cacheable) stores throughout.  Non-temporal stores were tried
/// for long spans to skip the destination read-for-ownership, but the
/// composed frame is *not* write-only here: the next frame's damage compare
/// re-reads it, and keeping it out of cache made that compare miss to DRAM
/// (~3x slower end-to-end on the video profile).  Plain stores keep the
/// frame warm for the consumer that actually exists.
inline void span_copy(unsigned char* dst, const unsigned char* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
  }
  if (i < n) std::memcpy(dst + i, src + i, n - i);
}

void copy_rows_sse2(Rgb888* dst_base, int dst_stride, const Rgb888* src_base,
                    int src_stride, const CopyWindow& w) {
  const std::size_t bytes =
      static_cast<std::size_t>(w.size.width) * sizeof(Rgb888);
  for (int row = 0; row < w.size.height; ++row) {
    span_copy(bytes_of(dst_base +
                       static_cast<std::size_t>(w.dst.y + row) * dst_stride +
                       w.dst.x),
              bytes_of(src_base +
                       static_cast<std::size_t>(w.src.y + row) * src_stride +
                       w.src.x),
              bytes);
  }
}

bool rows_equal_sse2(const Rgb888* a, const Rgb888* b, int stride, Rect r) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  for (int y = r.y; y < r.bottom(); ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * stride + r.x;
    if (!span_equal(bytes_of(a + off), bytes_of(b + off), bytes)) return false;
  }
  return true;
}

bool rows_equal_offset_sse2(const Rgb888* a, int a_stride, Rect a_rect,
                            const Rgb888* b, int b_stride, Point b_origin) {
  const std::size_t bytes =
      static_cast<std::size_t>(a_rect.width) * sizeof(Rgb888);
  for (int row = 0; row < a_rect.height; ++row) {
    const Rgb888* pa =
        a + static_cast<std::size_t>(a_rect.y + row) * a_stride + a_rect.x;
    const Rgb888* pb =
        b + static_cast<std::size_t>(b_origin.y + row) * b_stride + b_origin.x;
    if (!span_equal(bytes_of(pa), bytes_of(pb), bytes)) return false;
  }
  return true;
}

FirstDiff first_diff_sse2(const Rgb888* a, const Rgb888* b, int stride,
                          Rect r) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  for (int y = r.y; y < r.bottom(); ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * stride + r.x;
    const unsigned char* pa = bytes_of(a + off);
    const unsigned char* pb = bytes_of(b + off);
    if (span_equal(pa, pb, bytes)) continue;
    // The first differing byte belongs to the first differing pixel.
    for (std::size_t i = 0; i < bytes; ++i) {
      if (pa[i] != pb[i]) {
        return {true,
                Point{r.x + static_cast<int>(i / sizeof(Rgb888)), y}};
      }
    }
  }
  return {};
}

/// Three-byte element copies: a 4-byte wide load of the final pixel would
/// read one byte past the source buffer, so the gather stays element-wise.
void gather_sse2(const Rgb888* px, const std::size_t* idx, std::size_t n,
                 Rgb888* out) {
  for (std::size_t k = 0; k < n; ++k) {
    std::memcpy(out + k, px + idx[k], sizeof(Rgb888));
  }
}

constexpr KernelOps kSse2Ops{
    "sse2",
    &copy_rows_sse2,
    &rows_equal_sse2,
    &rows_equal_offset_sse2,
    &first_diff_sse2,
    &gather_sse2,
};

}  // namespace

const KernelOps& sse2_kernels() { return kSse2Ops; }

}  // namespace ccdem::gfx::kernels

#endif  // x86
