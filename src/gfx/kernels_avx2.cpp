// AVX2 row-span kernels: 32-byte chunks with a 16-byte/leftover tail.
// Byte-identical to kernels::scalar -- see kernels_sse2.cpp for the span
// framing; this file only widens the vectors.
//
// Built with -mavx2 via set_source_files_properties; only ever entered when
// __builtin_cpu_supports("avx2") said yes (or the user forced it, in which
// case running on an older CPU would fault -- which is the honest outcome).
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "gfx/compare.h"

namespace ccdem::gfx::kernels {

namespace {

constexpr std::size_t kVec = 32;

inline const unsigned char* bytes_of(const Rgb888* p) {
  return reinterpret_cast<const unsigned char*>(p);
}
inline unsigned char* bytes_of(Rgb888* p) {
  return reinterpret_cast<unsigned char*>(p);
}

inline bool span_equal(const unsigned char* a, const unsigned char* b,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb))) != 0xFFFFFFFFu) {
      return false;
    }
  }
  if (i + 16 <= n) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) != 0xFFFF) return false;
    i += 16;
  }
  return i == n || std::memcmp(a + i, b + i, n - i) == 0;
}

/// Regular (cacheable) stores -- see kernels_sse2.cpp for why non-temporal
/// stores were rejected (the next frame's compare re-reads the frame).
inline void span_copy(unsigned char* dst, const unsigned char* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  if (i + 16 <= n) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    i += 16;
  }
  if (i < n) std::memcpy(dst + i, src + i, n - i);
}

void copy_rows_avx2(Rgb888* dst_base, int dst_stride, const Rgb888* src_base,
                    int src_stride, const CopyWindow& w) {
  const std::size_t bytes =
      static_cast<std::size_t>(w.size.width) * sizeof(Rgb888);
  for (int row = 0; row < w.size.height; ++row) {
    span_copy(bytes_of(dst_base +
                       static_cast<std::size_t>(w.dst.y + row) * dst_stride +
                       w.dst.x),
              bytes_of(src_base +
                       static_cast<std::size_t>(w.src.y + row) * src_stride +
                       w.src.x),
              bytes);
  }
}

bool rows_equal_avx2(const Rgb888* a, const Rgb888* b, int stride, Rect r) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  for (int y = r.y; y < r.bottom(); ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * stride + r.x;
    if (!span_equal(bytes_of(a + off), bytes_of(b + off), bytes)) return false;
  }
  return true;
}

bool rows_equal_offset_avx2(const Rgb888* a, int a_stride, Rect a_rect,
                            const Rgb888* b, int b_stride, Point b_origin) {
  const std::size_t bytes =
      static_cast<std::size_t>(a_rect.width) * sizeof(Rgb888);
  for (int row = 0; row < a_rect.height; ++row) {
    const Rgb888* pa =
        a + static_cast<std::size_t>(a_rect.y + row) * a_stride + a_rect.x;
    const Rgb888* pb =
        b + static_cast<std::size_t>(b_origin.y + row) * b_stride + b_origin.x;
    if (!span_equal(bytes_of(pa), bytes_of(pb), bytes)) return false;
  }
  return true;
}

FirstDiff first_diff_avx2(const Rgb888* a, const Rgb888* b, int stride,
                          Rect r) {
  const std::size_t bytes =
      static_cast<std::size_t>(r.width) * sizeof(Rgb888);
  for (int y = r.y; y < r.bottom(); ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * stride + r.x;
    const unsigned char* pa = bytes_of(a + off);
    const unsigned char* pb = bytes_of(b + off);
    if (span_equal(pa, pb, bytes)) continue;
    for (std::size_t i = 0; i < bytes; ++i) {
      if (pa[i] != pb[i]) {
        return {true,
                Point{r.x + static_cast<int>(i / sizeof(Rgb888)), y}};
      }
    }
  }
  return {};
}

void gather_avx2(const Rgb888* px, const std::size_t* idx, std::size_t n,
                 Rgb888* out) {
  for (std::size_t k = 0; k < n; ++k) {
    std::memcpy(out + k, px + idx[k], sizeof(Rgb888));
  }
}

constexpr KernelOps kAvx2Ops{
    "avx2",
    &copy_rows_avx2,
    &rows_equal_avx2,
    &rows_equal_offset_avx2,
    &first_diff_avx2,
    &gather_avx2,
};

}  // namespace

const KernelOps& avx2_kernels() { return kAvx2Ops; }

}  // namespace ccdem::gfx::kernels

#endif  // x86
