// BufferPool: recycles pixel-buffer storage across runs.
//
// A simulated device allocates several megabytes of framebuffers per run
// (swapchain pair, per-app surfaces, meter sample snapshots).  Fleet sweeps
// re-create the whole device for every config, so without recycling each of
// the 90 runs behind Fig. 9 pays those allocations again.  The pool keeps
// released storage on a bounded free list and hands it back on the next
// acquire; contents are always re-initialised by the caller (acquire() fills,
// acquire_reserved() returns an empty vector), so pooled and fresh buffers
// are indistinguishable and results stay bit-identical.
//
// NOT thread-safe by design: each fleet worker owns its own pool (and its
// own device), so no synchronisation is needed on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gfx/pixel.h"

namespace ccdem::gfx {

class BufferPool {
 public:
  /// `max_free`: upper bound on retained buffers; releases beyond it are
  /// dropped (freed) so a burst of surfaces cannot pin memory forever.
  explicit BufferPool(std::size_t max_free = 16) : max_free_(max_free) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a buffer of exactly `n` pixels, every element set to `fill`.
  [[nodiscard]] std::vector<Rgb888> acquire(std::size_t n, Rgb888 fill);

  /// Returns an *empty* buffer with capacity >= `n`; the caller must write
  /// every element before reading (GridSampler::sample does).
  [[nodiscard]] std::vector<Rgb888> acquire_reserved(std::size_t n);

  /// Returns storage to the free list (or frees it if the list is full).
  void release(std::vector<Rgb888>&& v);

  /// Lifetime counters.  reuses() is the number of heap allocations avoided:
  /// acquires served from the free list with sufficient capacity.
  [[nodiscard]] std::uint64_t acquires() const { return acquires_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::uint64_t allocations() const {
    return acquires_ - reuses_;
  }

  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  [[nodiscard]] std::size_t free_bytes() const;

 private:
  /// Pops the first free buffer whose capacity covers `n` (counted as a
  /// reuse); falls back to any free buffer (it will grow) or a fresh one.
  [[nodiscard]] std::vector<Rgb888> take(std::size_t n);

  std::vector<std::vector<Rgb888>> free_;
  std::size_t max_free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace ccdem::gfx
