#include "gfx/region.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ccdem::gfx {

std::int64_t Region::area() const {
  std::int64_t a = 0;
  for (const Rect& r : rects_) a += r.area();
  return a;
}

Rect Region::bounds() const {
  Rect b{};
  for (const Rect& r : rects_) b = b.join(r);
  return b;
}

void Region::add(Rect r) {
  if (r.empty()) return;
  // Subtract the parts of `r` already covered, then insert the remainder.
  std::vector<Rect> pending{r};
  for (const Rect& existing : rects_) {
    std::vector<Rect> next;
    for (const Rect& p : pending) {
      const Rect overlap = p.intersect(existing);
      if (overlap.empty()) {
        next.push_back(p);
        continue;
      }
      // Split p \ overlap into up to four bands (top, bottom, left, right).
      if (overlap.y > p.y) {
        next.push_back(Rect{p.x, p.y, p.width, overlap.y - p.y});
      }
      if (overlap.bottom() < p.bottom()) {
        next.push_back(
            Rect{p.x, overlap.bottom(), p.width, p.bottom() - overlap.bottom()});
      }
      if (overlap.x > p.x) {
        next.push_back(
            Rect{p.x, overlap.y, overlap.x - p.x, overlap.height});
      }
      if (overlap.right() < p.right()) {
        next.push_back(Rect{overlap.right(), overlap.y,
                            p.right() - overlap.right(), overlap.height});
      }
    }
    pending = std::move(next);
    if (pending.empty()) return;  // fully covered already
  }
  for (const Rect& p : pending) {
    if (!p.empty()) rects_.push_back(p);
  }
  while (rects_.size() > kMaxRects) coalesce_one();
}

void Region::add(const Region& other) {
  for (const Rect& r : other.rects_) add(r);
}

void Region::clip(Rect clip_rect) {
  std::vector<Rect> out;
  out.reserve(rects_.size());
  for (const Rect& r : rects_) {
    const Rect c = r.intersect(clip_rect);
    if (!c.empty()) out.push_back(c);
  }
  rects_ = std::move(out);
}

void Region::translate(int dx, int dy) {
  for (Rect& r : rects_) r = r.translated(dx, dy);
}

bool Region::contains(Point p) const {
  for (const Rect& r : rects_) {
    if (r.contains(p)) return true;
  }
  return false;
}

bool Region::intersects(Rect r) const {
  for (const Rect& existing : rects_) {
    if (!existing.intersect(r).empty()) return true;
  }
  return false;
}

void Region::coalesce_one() {
  assert(rects_.size() >= 2);
  std::size_t best_i = 0, best_j = 1;
  std::int64_t best_waste = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < rects_.size(); ++i) {
    for (std::size_t j = i + 1; j < rects_.size(); ++j) {
      const Rect joined = rects_[i].join(rects_[j]);
      const std::int64_t waste =
          joined.area() - rects_[i].area() - rects_[j].area();
      if (waste < best_waste) {
        best_waste = waste;
        best_i = i;
        best_j = j;
      }
    }
  }
  Rect joined = rects_[best_i].join(rects_[best_j]);
  // Remove the higher index first so the lower index stays valid.
  rects_.erase(rects_.begin() + static_cast<std::ptrdiff_t>(best_j));
  rects_.erase(rects_.begin() + static_cast<std::ptrdiff_t>(best_i));
  // The join may now overlap other rects; absorb them into the join rather
  // than re-splitting (splitting could *grow* the rect count and prevent
  // the budget loop from terminating).  Each pass removes at least one
  // rect, so this strictly shrinks the set.
  bool absorbed = true;
  while (absorbed) {
    absorbed = false;
    for (auto it = rects_.begin(); it != rects_.end();) {
      if (!joined.intersect(*it).empty()) {
        joined = joined.join(*it);
        it = rects_.erase(it);
        absorbed = true;
      } else {
        ++it;
      }
    }
  }
  rects_.push_back(joined);
}

}  // namespace ccdem::gfx
