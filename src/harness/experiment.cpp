#include "harness/experiment.h"

#include <cassert>
#include <cmath>

#include "device/simulated_device.h"

namespace ccdem::harness {

device::DeviceConfig ExperimentConfig::device_config() const {
  device::DeviceConfig dc;
  dc.mode = mode;
  dc.pipeline = pipeline;
  dc.dpm = dpm;
  dc.governor = governor;
  dc.power = power;
  dc.rates = rates;
  dc.screen = screen;
  dc.seed = seed;
  dc.power_sample = power_sample;
  dc.exact_change_detection = exact_change_detection;
  dc.brightness = brightness;
  dc.baseline_hz = baseline_hz;
  dc.fast_rate_up = fast_rate_up;
  dc.tile_memo = tile_memo;
  dc.fault = fault;
  dc.obs = obs;
  return dc;
}

namespace {

/// Folds a full-buffer fingerprint per composed frame (see
/// ExperimentConfig::hash_frames).  Purely observational: reads the front
/// buffer, touches nothing.
class FrameStreamHasher : public gfx::FrameListener {
 public:
  void on_frame(const gfx::FrameInfo&, const gfx::Framebuffer& fb) override {
    hash_ = gfx::hash_combine(hash_, fb.fast_hash());
  }
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = gfx::kHashSeed;
};

}  // namespace

ExperimentResult run_experiment_on(device::SimulatedDevice& dev,
                                   const ExperimentConfig& config) {
  assert(config.duration.ticks > 0);
  dev.configure(config.device_config());
  apps::AppModel& app = dev.install_app(config.app);
  FrameStreamHasher stream_hasher;
  if (config.hash_frames) dev.add_frame_listener(&stream_hasher);
  dev.start_control();
  if (config.script) {
    // Replay path (.repro files): the embedded script is authoritative.
    // The Monkey RNG stream is never forked, which is fine -- fork() is
    // const, so the app/fault streams are unaffected either way.
    dev.dispatcher().schedule_script(*config.script);
  } else {
    dev.schedule_monkey_script(config.app.monkey, config.duration);
  }
  dev.run_until(sim::Time{config.duration.ticks});
  dev.finish();

  // --- collect -------------------------------------------------------------
  ExperimentResult r;
  r.app_name = config.app.name;
  r.mode = config.mode;
  r.duration = config.duration;
  r.mean_power_mw = dev.meter()->mean_power_mw();
  r.power = dev.meter()->trace();
  r.frame_rate = dev.recorder().frame_rate();
  r.content_rate = dev.recorder().content_rate();
  if (core::DisplayPowerManager* dpm = dev.dpm()) {
    r.measured_content_rate = dpm->content_rate_trace();
    r.meter_error_rate = dpm->meter().error_rate();
  }
  if (core::FrameRateGovernor* governor = dev.governor()) {
    r.meter_error_rate = governor->meter().error_rate();
  }
  r.rate_switches = dev.refresh_trace().size() - 1;
  r.refresh_rate = dev.refresh_trace();
  r.mean_refresh_hz =
      dev.refresh_trace().time_weighted_mean(sim::Time{}, dev.sim().now());
  r.frames_composed = dev.flinger().frames_composed();
  r.content_frames = dev.flinger().content_frames();
  r.frames_posted = app.frames_posted();
  r.touch_events = dev.dispatcher().events_delivered();
  r.final_frame_hash = dev.flinger().framebuffer().fast_hash();
  if (config.hash_frames) r.frame_stream_hash = stream_hasher.hash();
  if (metrics::ResponseLatencyRecorder* latency = dev.latency()) {
    r.response_mean_ms = latency->mean_ms();
    r.response_p95_ms = latency->percentile_ms(95.0);
    r.response_max_ms = latency->max_ms();
    r.response_interactions = latency->interactions();
  }
  // Flush the continuous integration to the end of the run, then snapshot.
  dev.power().add_energy_mj(dev.sim().now(), 0.0);
  r.energy = dev.power().breakdown();
  return r;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  device::SimulatedDevice dev;
  return run_experiment_on(dev, config);
}

AbResult run_ab(const ExperimentConfig& config) {
  assert(config.mode != ControlMode::kBaseline60 &&
         "the controlled arm must not be the baseline");
  ExperimentConfig base = config;
  base.mode = ControlMode::kBaseline60;

  AbResult ab;
  ab.baseline = run_experiment(base);
  ab.controlled = run_experiment(config);
  ab.saved_power_mw = ab.baseline.mean_power_mw - ab.controlled.mean_power_mw;
  ab.saved_power_pct = ab.baseline.mean_power_mw <= 0.0
                           ? 0.0
                           : ab.saved_power_mw / ab.baseline.mean_power_mw *
                                 100.0;
  ab.quality = metrics::compare_quality(ab.baseline.content_rate,
                                        ab.controlled.content_rate);
  return ab;
}

RepeatedAbResult run_ab_repeated(const ExperimentConfig& config, int runs) {
  assert(runs > 0);
  RepeatedAbResult out;
  out.runs = runs;
  // Welford over the per-seed results.
  double saved_mean = 0.0, saved_m2 = 0.0;
  double q_mean = 0.0, q_m2 = 0.0;
  for (int i = 0; i < runs; ++i) {
    ExperimentConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(i);
    const AbResult ab = run_ab(c);
    const double n = static_cast<double>(i + 1);
    const double ds = ab.saved_power_mw - saved_mean;
    saved_mean += ds / n;
    saved_m2 += ds * (ab.saved_power_mw - saved_mean);
    const double dq = ab.quality.display_quality_pct - q_mean;
    q_mean += dq / n;
    q_m2 += dq * (ab.quality.display_quality_pct - q_mean);
  }
  out.saved_mean_mw = saved_mean;
  out.quality_mean_pct = q_mean;
  if (runs > 1) {
    out.saved_std_mw = std::sqrt(saved_m2 / (runs - 1));
    out.quality_std_pct = std::sqrt(q_m2 / (runs - 1));
  }
  return out;
}

}  // namespace ccdem::harness
