#include "harness/experiment.h"

#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

#include "core/frame_rate_governor.h"
#include "core/hysteresis_policy.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "input/input_dispatcher.h"
#include "input/monkey.h"
#include "metrics/frame_stats_recorder.h"
#include "metrics/response_latency.h"
#include "power/monsoon_meter.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ccdem::harness {

namespace {

/// Bridges the panel's composer phase to the SurfaceFlinger.
class ComposerHook final : public display::VsyncObserver {
 public:
  explicit ComposerHook(gfx::SurfaceFlinger& flinger) : flinger_(flinger) {}
  void on_vsync(sim::Time t, int) override { flinger_.on_vsync(t); }

 private:
  gfx::SurfaceFlinger& flinger_;
};

/// Charges the input pipeline's CPU cost per touch event.
class TouchPowerHook final : public input::TouchListener {
 public:
  explicit TouchPowerHook(power::DevicePowerModel& power) : power_(power) {}
  void on_touch(const input::TouchEvent& e) override { power_.on_touch(e.t); }

 private:
  power::DevicePowerModel& power_;
};

int baseline_rate(const ExperimentConfig& config) {
  const int hz =
      config.baseline_hz > 0 ? config.baseline_hz : config.rates.max_hz();
  assert(config.rates.supports(hz));
  return hz;
}

std::unique_ptr<core::RefreshPolicy> make_policy(
    const ExperimentConfig& config) {
  switch (config.mode) {
    case ControlMode::kBaseline60:
    case ControlMode::kE3FrameRate:
      return std::make_unique<core::FixedPolicy>(baseline_rate(config));
    case ControlMode::kSection:
    case ControlMode::kSectionWithBoost:
      return std::make_unique<core::SectionPolicy>(config.rates,
                                                   config.dpm.section_alpha);
    case ControlMode::kSectionHysteresis:
      return std::make_unique<core::HysteresisPolicy>(
          std::make_unique<core::SectionPolicy>(config.rates,
                                                config.dpm.section_alpha));
    case ControlMode::kNaive:
      return std::make_unique<core::NaivePolicy>(config.rates);
  }
  return nullptr;  // unreachable
}

}  // namespace

const char* control_mode_name(ControlMode m) {
  switch (m) {
    case ControlMode::kBaseline60:
      return "baseline-60Hz";
    case ControlMode::kSection:
      return "section";
    case ControlMode::kSectionWithBoost:
      return "section+boost";
    case ControlMode::kNaive:
      return "naive";
    case ControlMode::kSectionHysteresis:
      return "section+boost+hysteresis";
    case ControlMode::kE3FrameRate:
      return "e3-framerate";
  }
  return "?";
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  assert(config.duration.ticks > 0);
  sim::Simulator sim;
  sim::Rng root(config.seed);

  // --- device substrates -------------------------------------------------
  gfx::SurfaceFlinger flinger(config.screen);
  flinger.set_exact_change_detection(config.exact_change_detection);

  // The stock arms (baseline and the E3 comparison) hold a fixed rate; the
  // controlled arms start from the maximum and let the policy take over.
  const int max_hz = (config.mode == ControlMode::kBaseline60 ||
                      config.mode == ControlMode::kE3FrameRate)
                         ? baseline_rate(config)
                         : config.rates.max_hz();
  power::DevicePowerModel power(config.power, max_hz);
  power.set_brightness(sim.now(), config.brightness);
  flinger.add_listener(&power);

  metrics::FrameStatsRecorder recorder;
  flinger.add_listener(&recorder);

  metrics::ResponseLatencyRecorder latency;
  flinger.add_listener(&latency);

  display::DisplayPanel panel(sim, config.rates, max_hz);
  panel.set_fast_rate_up(config.fast_rate_up);
  sim::Trace refresh_trace("refresh_hz");
  refresh_trace.record(sim.now(), static_cast<double>(max_hz));
  panel.add_rate_listener([&power, &refresh_trace](sim::Time t, int hz) {
    power.on_rate_change(t, hz);
    refresh_trace.record(t, static_cast<double>(hz));
  });

  // --- application -------------------------------------------------------
  gfx::Surface* surface = flinger.create_surface(
      config.app.name, gfx::Rect::of(config.screen), /*z_order=*/0);
  apps::AppModel app(config.app, surface, &power, root.fork(1));
  panel.add_observer(display::VsyncPhase::kApp, &app);

  ComposerHook composer(flinger);
  panel.add_observer(display::VsyncPhase::kComposer, &composer);

  // --- proposed system (skipped in the baseline arm) ----------------------
  std::unique_ptr<core::DisplayPowerManager> dpm;
  std::unique_ptr<core::FrameRateGovernor> governor;
  if (config.mode == ControlMode::kE3FrameRate) {
    governor = std::make_unique<core::FrameRateGovernor>(
        sim, flinger, [&app](double fps) { app.set_request_cap(fps); },
        &power);
  } else if (config.mode != ControlMode::kBaseline60) {
    core::DpmConfig dc = config.dpm;
    dc.touch_boost = config.mode == ControlMode::kSectionWithBoost ||
                     config.mode == ControlMode::kSectionHysteresis;
    dpm = std::make_unique<core::DisplayPowerManager>(
        sim, panel, flinger, make_policy(config), &power, dc);
  }

  // --- input -------------------------------------------------------------
  input::InputDispatcher dispatcher(sim);
  TouchPowerHook touch_power(power);
  dispatcher.add_listener(&touch_power);
  if (dpm) dispatcher.add_listener(dpm.get());  // boost fires before the app
  if (governor) dispatcher.add_listener(governor.get());
  dispatcher.add_listener(&latency);
  dispatcher.add_listener(&app);

  sim::Rng monkey_rng = root.fork(2);
  const auto script = input::generate_monkey_script(
      monkey_rng, config.app.monkey, config.duration, config.screen);
  dispatcher.schedule_script(script);

  // --- measurement ---------------------------------------------------------
  power::MonsoonMeter meter(sim, power, config.power_sample);

  // --- run -----------------------------------------------------------------
  sim.run_until(sim::Time{config.duration.ticks});
  panel.stop();
  if (dpm) dpm->stop();
  if (governor) governor->stop();
  meter.stop();
  recorder.finish(sim.now());

  // --- collect ---------------------------------------------------------------
  ExperimentResult r;
  r.app_name = config.app.name;
  r.mode = config.mode;
  r.duration = config.duration;
  r.mean_power_mw = meter.mean_power_mw();
  r.power = meter.trace();
  r.frame_rate = recorder.frame_rate();
  r.content_rate = recorder.content_rate();
  if (dpm) {
    r.measured_content_rate = dpm->content_rate_trace();
    r.meter_error_rate = dpm->meter().error_rate();
  }
  if (governor) {
    r.meter_error_rate = governor->meter().error_rate();
  }
  r.rate_switches = refresh_trace.size() - 1;
  r.refresh_rate = refresh_trace;
  r.mean_refresh_hz =
      refresh_trace.time_weighted_mean(sim::Time{}, sim.now());
  r.frames_composed = flinger.frames_composed();
  r.content_frames = flinger.content_frames();
  r.frames_posted = app.frames_posted();
  r.touch_events = dispatcher.events_delivered();
  r.response_mean_ms = latency.mean_ms();
  r.response_p95_ms = latency.percentile_ms(95.0);
  r.response_max_ms = latency.max_ms();
  r.response_interactions = latency.interactions();
  // Flush the continuous integration to the end of the run, then snapshot.
  power.add_energy_mj(sim.now(), 0.0);
  r.energy = power.breakdown();
  return r;
}

AbResult run_ab(const ExperimentConfig& config) {
  assert(config.mode != ControlMode::kBaseline60 &&
         "the controlled arm must not be the baseline");
  ExperimentConfig base = config;
  base.mode = ControlMode::kBaseline60;

  AbResult ab;
  ab.baseline = run_experiment(base);
  ab.controlled = run_experiment(config);
  ab.saved_power_mw = ab.baseline.mean_power_mw - ab.controlled.mean_power_mw;
  ab.saved_power_pct = ab.baseline.mean_power_mw <= 0.0
                           ? 0.0
                           : ab.saved_power_mw / ab.baseline.mean_power_mw *
                                 100.0;
  ab.quality = metrics::compare_quality(ab.baseline.content_rate,
                                        ab.controlled.content_rate);
  return ab;
}

RepeatedAbResult run_ab_repeated(const ExperimentConfig& config, int runs) {
  assert(runs > 0);
  RepeatedAbResult out;
  out.runs = runs;
  // Welford over the per-seed results.
  double saved_mean = 0.0, saved_m2 = 0.0;
  double q_mean = 0.0, q_m2 = 0.0;
  for (int i = 0; i < runs; ++i) {
    ExperimentConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(i);
    const AbResult ab = run_ab(c);
    const double n = static_cast<double>(i + 1);
    const double ds = ab.saved_power_mw - saved_mean;
    saved_mean += ds / n;
    saved_m2 += ds * (ab.saved_power_mw - saved_mean);
    const double dq = ab.quality.display_quality_pct - q_mean;
    q_mean += dq / n;
    q_m2 += dq * (ab.quality.display_quality_pct - q_mean);
  }
  out.saved_mean_mw = saved_mean;
  out.quality_mean_pct = q_mean;
  if (runs > 1) {
    out.saved_std_mw = std::sqrt(saved_m2 / (runs - 1));
    out.quality_std_pct = std::sqrt(q_m2 / (runs - 1));
  }
  return out;
}

}  // namespace ccdem::harness
