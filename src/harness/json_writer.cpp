#include "harness/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace ccdem::harness {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_and_newline() {
  if (have_key_) {
    // A key was just written; the value follows on the same line.
    have_key_ = false;
    return;
  }
  assert((stack_.empty() || stack_.back() == Frame::kArray || !started_) &&
         "object members need a key() before each value");
  if (needs_comma_) os_ << ',';
  if (!stack_.empty() && indent_ > 0) {
    os_ << '\n'
        << std::string(stack_.size() * static_cast<std::size_t>(indent_), ' ');
  }
}

void JsonWriter::open(Frame f, char c) {
  comma_and_newline();
  started_ = true;
  os_ << c;
  stack_.push_back(f);
  needs_comma_ = false;
}

void JsonWriter::close(Frame f, char c) {
  assert(!stack_.empty() && stack_.back() == f && "mismatched close");
  (void)f;
  stack_.pop_back();
  if (needs_comma_ && indent_ > 0) {
    os_ << '\n'
        << std::string(stack_.size() * static_cast<std::size_t>(indent_), ' ');
  }
  os_ << c;
  needs_comma_ = true;
  if (stack_.empty()) os_ << '\n';
}

void JsonWriter::begin_object() { open(Frame::kObject, '{'); }
void JsonWriter::end_object() { close(Frame::kObject, '}'); }
void JsonWriter::begin_array() { open(Frame::kArray, '['); }
void JsonWriter::end_array() { close(Frame::kArray, ']'); }

void JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Frame::kObject &&
         "key() outside an object");
  assert(!have_key_ && "two keys in a row");
  if (needs_comma_) os_ << ',';
  if (indent_ > 0) {
    os_ << '\n'
        << std::string(stack_.size() * static_cast<std::size_t>(indent_), ' ');
  }
  os_ << '"' << escape(name) << "\":";
  if (indent_ > 0) os_ << ' ';
  have_key_ = true;
  needs_comma_ = false;
}

void JsonWriter::value(std::string_view s) {
  comma_and_newline();
  started_ = true;
  os_ << '"' << escape(s) << '"';
  needs_comma_ = true;
}

void JsonWriter::value(bool b) {
  comma_and_newline();
  started_ = true;
  os_ << (b ? "true" : "false");
  needs_comma_ = true;
}

void JsonWriter::value(double d) {
  // JSON has no Inf/NaN, and silently writing null would corrupt numeric
  // columns downstream; a non-finite value is a caller bug.
  if (!std::isfinite(d)) {
    throw std::invalid_argument("JsonWriter: non-finite double");
  }
  comma_and_newline();
  started_ = true;
  // Shortest decimal rendering that strtod's back to exactly `d`, so the
  // emitted JSON round-trips bit-exactly (max_digits10 always suffices).
  // Exactly-integral values print as plain integers ("100", not "1e+02").
  char buf[64];
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", d);
  } else {
    for (int prec = 1; prec <= std::numeric_limits<double>::max_digits10;
         ++prec) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, d);
      if (std::strtod(buf, nullptr) == d) break;
    }
  }
  os_ << buf;
  needs_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  comma_and_newline();
  started_ = true;
  os_ << v;
  needs_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  comma_and_newline();
  started_ = true;
  os_ << v;
  needs_comma_ = true;
}

void JsonWriter::value_null() {
  comma_and_newline();
  started_ = true;
  os_ << "null";
  needs_comma_ = true;
}

}  // namespace ccdem::harness
