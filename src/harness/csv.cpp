#include "harness/csv.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ccdem::harness {

void write_traces_csv(std::ostream& os,
                      const std::vector<const sim::Trace*>& traces,
                      sim::Duration interval, sim::Time begin,
                      sim::Time end) {
  assert(!traces.empty());
  std::vector<sim::Trace> resampled;
  resampled.reserve(traces.size());
  os << "time_s";
  for (const sim::Trace* t : traces) {
    assert(t != nullptr);
    os << "," << (t->name().empty() ? "value" : t->name());
    resampled.push_back(t->resample(interval, begin, end));
  }
  os << "\n";

  const std::size_t rows = resampled.front().size();
  os << std::fixed << std::setprecision(6);
  for (std::size_t i = 0; i < rows; ++i) {
    os << resampled.front().points()[i].t.seconds();
    for (const sim::Trace& t : resampled) {
      assert(t.size() == rows);
      os << "," << t.points()[i].value;
    }
    os << "\n";
  }
}

std::string traces_to_csv(const std::vector<const sim::Trace*>& traces,
                          sim::Duration interval, sim::Time begin,
                          sim::Time end) {
  std::ostringstream os;
  write_traces_csv(os, traces, interval, begin, end);
  return os.str();
}

}  // namespace ccdem::harness
