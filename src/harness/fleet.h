// FleetRunner: parallel experiment sweeps over long-lived devices.
//
// Experiments are pure functions of their config (every stochastic source
// is seeded), so a fleet of them -- the 30-app sweeps behind Figs. 9-11 and
// Table 1 -- can run on all cores with bit-identical results to a serial
// run.  Unlike a naive thread-per-run scheme, each worker owns ONE
// device::SimulatedDevice for its whole lifetime: run_experiment_on()
// reconfigures it per run, and the device's gfx::BufferPool recycles the
// framebuffer and meter-snapshot storage (several MB per device assembly)
// across runs.  Pooled storage is always re-initialised before use, so
// reuse cannot leak state between runs.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/experiment.h"
#include "obs/counters.h"

namespace ccdem::harness {

/// Counters aggregated over all workers after a sweep.
struct FleetStats {
  unsigned workers = 0;
  std::uint64_t runs_completed = 0;
  /// Frames composed across every run (work actually done).
  std::uint64_t frames_composed = 0;
  /// Buffer-pool traffic: `buffer_reuses` of the `buffer_acquires` were
  /// served from recycled storage, i.e. heap allocations avoided.
  std::uint64_t buffer_acquires = 0;
  std::uint64_t buffer_reuses = 0;
  std::uint64_t buffer_allocations = 0;
  /// Observability counters merged (summed) across every worker's sink.
  /// Merging is commutative, so the totals are independent of scheduling
  /// and equal a serial run's -- except the pool.* counters, which depend
  /// on how runs share a worker's device.
  obs::Counters counters;
};

class FleetRunner {
 public:
  /// `max_threads` 0 = one worker per hardware core (capped at the number
  /// of configs in each run() call).
  explicit FleetRunner(unsigned max_threads = 0)
      : max_threads_(max_threads) {}

  /// Runs every config and returns results in input order, bit-identical
  /// to calling run_experiment() sequentially.  Work is claimed from a
  /// shared queue, so an expensive config does not stall the others.
  [[nodiscard]] std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& configs);

  /// Stats of the most recent run() call.
  [[nodiscard]] const FleetStats& stats() const { return stats_; }

 private:
  unsigned max_threads_;
  FleetStats stats_;
};

}  // namespace ccdem::harness
