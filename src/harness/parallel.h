// Parallel experiment execution.
//
// Experiments are pure functions of their config (every stochastic source
// is seeded), so a fleet of them -- the 30-app sweeps behind Figs. 9-11 and
// Table 1 -- can run on all cores with bit-identical results to a serial
// run.  Each worker thread owns a complete simulated device; nothing is
// shared.
#pragma once

#include <vector>

#include "harness/experiment.h"

namespace ccdem::harness {

/// Runs every config and returns results in input order.  `max_threads`
/// 0 = one thread per hardware core.  Results are bit-identical to calling
/// run_experiment sequentially.
[[nodiscard]] std::vector<ExperimentResult> run_experiments_parallel(
    const std::vector<ExperimentConfig>& configs, unsigned max_threads = 0);

}  // namespace ccdem::harness
