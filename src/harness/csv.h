// CSV export of traces, for plotting the regenerated figures with external
// tools (gnuplot, pandas, ...).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace ccdem::harness {

/// Writes `traces` as columns on a common time grid:
///   time_s,<name0>,<name1>,...
/// Each trace is resampled to `interval` buckets over [begin, end) with
/// step-hold semantics (see sim::Trace::resample).
void write_traces_csv(std::ostream& os,
                      const std::vector<const sim::Trace*>& traces,
                      sim::Duration interval, sim::Time begin, sim::Time end);

/// Convenience: renders to a string (used by tests and small tools).
[[nodiscard]] std::string traces_to_csv(
    const std::vector<const sim::Trace*>& traces, sim::Duration interval,
    sim::Time begin, sim::Time end);

}  // namespace ccdem::harness
