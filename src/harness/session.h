// Usage sessions: multi-app day-in-the-life composites.
//
// The paper evaluates apps in isolation; what a battery feels is a mix.  A
// session is an ordered list of (app, duration) segments -- e.g. an hour of
// social feed, twenty minutes of games, a video -- each replayed with its
// own deterministic Monkey script.  The runner executes every segment under
// a given control mode and aggregates energy, which the extension bench
// turns into screen-on-time numbers.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace ccdem::harness {

struct SessionSegment {
  apps::AppSpec app;
  sim::Duration duration{};
};

struct SessionConfig {
  std::vector<SessionSegment> segments;
  std::uint64_t seed = 1;
  ControlMode mode = ControlMode::kBaseline60;
  /// Applied to every segment's experiment.
  core::DpmConfig dpm{};
};

struct SessionResult {
  /// Per-segment results, in order.
  std::vector<ExperimentResult> segments;
  sim::Duration total_duration{};
  double total_energy_mj = 0.0;
  double mean_power_mw = 0.0;
};

/// Runs every segment and aggregates.  Segment i uses seed `seed + i` so
/// the same session config replays identically across control modes.
/// Each segment gets a fresh device (cold-start semantics).
[[nodiscard]] SessionResult run_session(const SessionConfig& config);

/// Aggregate view of a switching session (one continuous device).
struct SwitchingSessionResult {
  sim::Duration total_duration{};
  double mean_power_mw = 0.0;
  double total_energy_mj = 0.0;
  /// Mean power per segment, in order (from the continuous power trace).
  std::vector<double> segment_power_mw;
  sim::Trace power{"power_mw"};
  sim::Trace refresh_rate{"refresh_hz"};
  /// Ground-truth content rate per second across the whole session; spans
  /// segment boundaries, so the incoming app's repaint is visible in it.
  sim::Trace content_rate{"content_rate_fps"};
  std::uint64_t frames_composed = 0;
  std::uint64_t content_frames = 0;
  /// Frames each segment's app posted over the whole session, in segment
  /// order -- a backgrounded app should stop contributing.
  std::vector<std::uint64_t> app_frames_posted;
};

/// Runs all segments on ONE continuous simulated device: apps switch
/// foreground at segment boundaries (background apps stop rendering and
/// the incoming app repaints its window), the controller and power
/// integration run uninterrupted across switches.  More faithful than
/// run_session's cold-start-per-segment semantics; use it to study
/// transition behaviour.
[[nodiscard]] SwitchingSessionResult run_switching_session(
    const SessionConfig& config);

/// A plausible mixed-usage hour scaled down to `scale` of its duration
/// (scale = 1.0 -> 60 min of simulated time; tests and benches use smaller
/// scales).  Mix: social/browse 45 %, games 30 %, video 20 %, idle-static 5 %.
[[nodiscard]] SessionConfig typical_hour(double scale, ControlMode mode,
                                         std::uint64_t seed = 1);

}  // namespace ccdem::harness
