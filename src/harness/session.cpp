#include "harness/session.h"

#include <cassert>
#include <utility>

#include "device/simulated_device.h"

namespace ccdem::harness {

SessionResult run_session(const SessionConfig& config) {
  assert(!config.segments.empty());
  SessionResult result;
  std::uint64_t i = 0;
  for (const SessionSegment& seg : config.segments) {
    ExperimentConfig ec;
    ec.app = seg.app;
    ec.duration = seg.duration;
    ec.seed = config.seed + i;
    ec.mode = config.mode;
    ec.dpm = config.dpm;
    ExperimentResult r = run_experiment(ec);
    result.total_duration = result.total_duration + seg.duration;
    result.total_energy_mj += r.mean_power_mw * seg.duration.seconds();
    result.segments.push_back(std::move(r));
    ++i;
  }
  const double total_s = result.total_duration.seconds();
  result.mean_power_mw =
      total_s <= 0.0 ? 0.0 : result.total_energy_mj / total_s;
  return result;
}

SwitchingSessionResult run_switching_session(const SessionConfig& config) {
  assert(!config.segments.empty());
  assert(config.mode != ControlMode::kE3FrameRate &&
         "per-app governors are not wired for switching sessions");

  device::DeviceConfig dc;
  dc.mode = config.mode;
  dc.dpm = config.dpm;
  dc.seed = config.seed;

  device::SimulatedDevice dev;
  dev.configure(dc);
  dev.start_control();

  // Build every app up front (backgrounded), then schedule its segment's
  // Monkey script and the foreground switch at the segment boundary.  Each
  // segment forks its own app/monkey RNG streams off the session seed so a
  // reordered session keeps per-segment behaviour.
  sim::Time cursor{};
  std::vector<std::pair<sim::Time, sim::Time>> windows;
  std::uint64_t i = 0;
  for (const SessionSegment& seg : config.segments) {
    const std::size_t index = dev.app_count();
    dev.install_app(seg.app, /*rng_stream=*/100 + i, /*foreground=*/false);
    dev.schedule_monkey_script(seg.app.monkey, seg.duration,
                               /*rng_stream=*/200 + i, /*offset=*/cursor);
    dev.sim().at(cursor,
                 [&dev, index](sim::Time) { dev.focus_app(index); });
    windows.emplace_back(cursor, cursor + seg.duration);
    cursor += seg.duration;
    ++i;
  }

  dev.run_until(cursor);
  dev.finish();

  SwitchingSessionResult result;
  result.total_duration = cursor - sim::Time{};
  result.mean_power_mw = dev.meter()->mean_power_mw();
  result.total_energy_mj =
      result.mean_power_mw * result.total_duration.seconds();
  result.power = dev.meter()->trace();
  result.refresh_rate = dev.refresh_trace();
  result.content_rate = dev.recorder().content_rate();
  result.frames_composed = dev.flinger().frames_composed();
  result.content_frames = dev.flinger().content_frames();
  for (std::size_t a = 0; a < dev.app_count(); ++a) {
    result.app_frames_posted.push_back(dev.app(a).frames_posted());
  }
  for (const auto& [begin, end] : windows) {
    result.segment_power_mw.push_back(
        result.power.mean_between(begin, end + sim::milliseconds(50)));
  }
  return result;
}

SessionConfig typical_hour(double scale, ControlMode mode,
                           std::uint64_t seed) {
  assert(scale > 0.0);
  const auto minutes = [scale](double m) {
    return sim::seconds_f(m * 60.0 * scale);
  };
  SessionConfig config;
  config.seed = seed;
  config.mode = mode;
  config.segments = {
      {apps::app_by_name("Facebook"), minutes(15)},
      {apps::app_by_name("KakaoTalk"), minutes(6)},
      {apps::app_by_name("Naver"), minutes(6)},
      {apps::app_by_name("Jelly Splash"), minutes(10)},
      {apps::app_by_name("Cookie Run"), minutes(8)},
      {apps::app_by_name("MX Player"), minutes(12)},
      {apps::app_by_name("Tiny Flashlight"), minutes(3)},
  };
  return config;
}

}  // namespace ccdem::harness
