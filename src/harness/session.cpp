#include "harness/session.h"

#include <cassert>
#include <memory>

#include "core/hysteresis_policy.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "input/input_dispatcher.h"
#include "input/monkey.h"
#include "metrics/frame_stats_recorder.h"
#include "power/monsoon_meter.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ccdem::harness {

SessionResult run_session(const SessionConfig& config) {
  assert(!config.segments.empty());
  SessionResult result;
  std::uint64_t i = 0;
  for (const SessionSegment& seg : config.segments) {
    ExperimentConfig ec;
    ec.app = seg.app;
    ec.duration = seg.duration;
    ec.seed = config.seed + i;
    ec.mode = config.mode;
    ec.dpm = config.dpm;
    ExperimentResult r = run_experiment(ec);
    result.total_duration = result.total_duration + seg.duration;
    result.total_energy_mj += r.mean_power_mw * seg.duration.seconds();
    result.segments.push_back(std::move(r));
    ++i;
  }
  const double total_s = result.total_duration.seconds();
  result.mean_power_mw =
      total_s <= 0.0 ? 0.0 : result.total_energy_mj / total_s;
  return result;
}

namespace {

/// Bridges the panel's composer phase to the SurfaceFlinger (local copy;
/// the experiment translation unit keeps its own).
class ComposerHook final : public display::VsyncObserver {
 public:
  explicit ComposerHook(gfx::SurfaceFlinger& flinger) : flinger_(flinger) {}
  void on_vsync(sim::Time t, int) override { flinger_.on_vsync(t); }

 private:
  gfx::SurfaceFlinger& flinger_;
};

}  // namespace

SwitchingSessionResult run_switching_session(const SessionConfig& config) {
  assert(!config.segments.empty());
  assert(config.mode != ControlMode::kE3FrameRate &&
         "per-app governors are not wired for switching sessions");

  sim::Simulator sim;
  sim::Rng root(config.seed);
  const gfx::Size screen = apps::kGalaxyS3Screen;
  const display::RefreshRateSet rates = display::RefreshRateSet::galaxy_s3();

  gfx::SurfaceFlinger flinger(screen);
  power::DevicePowerModel power(power::DevicePowerParams::galaxy_s3(),
                                rates.max_hz());
  flinger.add_listener(&power);
  metrics::FrameStatsRecorder recorder;
  flinger.add_listener(&recorder);

  display::DisplayPanel panel(sim, rates, rates.max_hz());
  sim::Trace refresh_trace("refresh_hz");
  refresh_trace.record(sim.now(), static_cast<double>(rates.max_hz()));
  panel.add_rate_listener([&](sim::Time t, int hz) {
    power.on_rate_change(t, hz);
    refresh_trace.record(t, static_cast<double>(hz));
  });

  ComposerHook composer(flinger);

  // Build every app up front (backgrounded), register all of them, then
  // schedule foreground switches at the segment boundaries.
  std::vector<std::unique_ptr<apps::AppModel>> models;
  input::InputDispatcher dispatcher(sim);

  std::unique_ptr<core::DisplayPowerManager> dpm;
  if (config.mode != ControlMode::kBaseline60) {
    core::DpmConfig dc = config.dpm;
    dc.touch_boost = config.mode == ControlMode::kSectionWithBoost ||
                     config.mode == ControlMode::kSectionHysteresis;
    std::unique_ptr<core::RefreshPolicy> policy;
    switch (config.mode) {
      case ControlMode::kNaive:
        policy = std::make_unique<core::NaivePolicy>(rates);
        break;
      case ControlMode::kSectionHysteresis:
        policy = std::make_unique<core::HysteresisPolicy>(
            std::make_unique<core::SectionPolicy>(rates, dc.section_alpha));
        break;
      default:
        policy = std::make_unique<core::SectionPolicy>(rates,
                                                       dc.section_alpha);
        break;
    }
    dpm = std::make_unique<core::DisplayPowerManager>(
        sim, panel, flinger, std::move(policy), &power, dc);
    dispatcher.add_listener(dpm.get());
  }

  sim::Time cursor{};
  std::vector<std::pair<sim::Time, sim::Time>> windows;
  std::uint64_t i = 0;
  for (const SessionSegment& seg : config.segments) {
    gfx::Surface* surface = flinger.create_surface(
        seg.app.name, gfx::Rect::of(screen), /*z_order=*/0);
    auto model = std::make_unique<apps::AppModel>(
        seg.app, surface, &power, root.fork(100 + i));
    model->set_foreground(false);
    panel.add_observer(display::VsyncPhase::kApp, model.get());
    dispatcher.add_listener(model.get());

    // Segment-local Monkey script, offset to the segment window.
    sim::Rng monkey_rng = root.fork(200 + i);
    auto script = input::generate_monkey_script(
        monkey_rng, seg.app.monkey, seg.duration, screen);
    for (auto& g : script) g.start = g.start + (cursor - sim::Time{});
    dispatcher.schedule_script(script);

    apps::AppModel* raw = model.get();
    sim.at(cursor, [raw, &models](sim::Time) {
      // Background whoever is foreground, then resume this app.
      for (auto& m : models) {
        if (m->foreground()) m->set_foreground(false);
      }
      raw->set_foreground(true);
    });
    windows.emplace_back(cursor, cursor + seg.duration);
    cursor += seg.duration;
    models.push_back(std::move(model));
    ++i;
  }

  panel.add_observer(display::VsyncPhase::kComposer, &composer);
  power::MonsoonMeter meter(sim, power);
  sim.run_until(cursor);
  panel.stop();
  if (dpm) dpm->stop();
  meter.stop();
  recorder.finish(sim.now());

  SwitchingSessionResult result;
  result.total_duration = cursor - sim::Time{};
  result.mean_power_mw = meter.mean_power_mw();
  result.total_energy_mj =
      result.mean_power_mw * result.total_duration.seconds();
  result.power = meter.trace();
  result.refresh_rate = refresh_trace;
  result.frames_composed = flinger.frames_composed();
  result.content_frames = flinger.content_frames();
  for (const auto& [begin, end] : windows) {
    result.segment_power_mw.push_back(
        result.power.mean_between(begin, end + sim::milliseconds(50)));
  }
  return result;
}

SessionConfig typical_hour(double scale, ControlMode mode,
                           std::uint64_t seed) {
  assert(scale > 0.0);
  const auto minutes = [scale](double m) {
    return sim::seconds_f(m * 60.0 * scale);
  };
  SessionConfig config;
  config.seed = seed;
  config.mode = mode;
  config.segments = {
      {apps::app_by_name("Facebook"), minutes(15)},
      {apps::app_by_name("KakaoTalk"), minutes(6)},
      {apps::app_by_name("Naver"), minutes(6)},
      {apps::app_by_name("Jelly Splash"), minutes(10)},
      {apps::app_by_name("Cookie Run"), minutes(8)},
      {apps::app_by_name("MX Player"), minutes(12)},
      {apps::app_by_name("Tiny Flashlight"), minutes(3)},
  };
  return config;
}

}  // namespace ccdem::harness
