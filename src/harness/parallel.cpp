#include "harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace ccdem::harness {

std::vector<ExperimentResult> run_experiments_parallel(
    const std::vector<ExperimentConfig>& configs, unsigned max_threads) {
  std::vector<ExperimentResult> results(configs.size());
  if (configs.empty()) return results;

  unsigned threads = max_threads != 0 ? max_threads
                                      : std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(
                             threads, static_cast<unsigned>(configs.size())));

  // Work stealing via a shared index; each experiment is independent.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      results[i] = run_experiment(configs[i]);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace ccdem::harness
