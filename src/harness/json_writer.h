// JsonWriter: a small streaming JSON emitter for machine-readable bench
// output (BENCH_*.json perf-trajectory files).
//
// The obs layer already writes Chrome trace JSON by hand; this class factors
// the quoting/nesting bookkeeping so bench binaries can emit structured
// results without string concatenation.  Output is deterministic (keys in
// call order, fixed float formatting) so successive runs diff cleanly.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ccdem::harness {

class JsonWriter {
 public:
  /// Writes to `os`; `indent` spaces per nesting level (0 = compact).
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // Containers.  The top-level value must be opened with begin_object() or
  // begin_array(); inside an object every value needs a preceding key().
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view name);

  // Scalars.
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  /// Shortest decimal that parses back to exactly `d` (round-trippable);
  /// throws std::invalid_argument on NaN/inf -- JSON cannot carry them.
  void value(double d);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value_null();

  // key() + value() in one call, for the common case.
  template <typename T>
  void kv(std::string_view name, T v) {
    key(name);
    value(v);
  }

  /// True once every opened container has been closed again.
  [[nodiscard]] bool complete() const { return stack_.empty() && started_; }

  /// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  enum class Frame { kObject, kArray };

  void comma_and_newline();
  void open(Frame f, char c);
  void close(Frame f, char c);

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  bool needs_comma_ = false;  // a value was emitted at the current level
  bool have_key_ = false;     // key() emitted, awaiting its value
  bool started_ = false;
};

}  // namespace ccdem::harness
