// Plain-text reporting: fixed-width tables and trace series for the bench
// binaries that regenerate the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "sim/trace.h"

namespace ccdem::harness {

struct FleetStats;  // harness/fleet.h

/// A fixed-width text table.  Columns size themselves to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
[[nodiscard]] std::string fmt(double v, int precision = 1);
/// "12.3 (+-4.5)" -- the paper's mean (±std) notation.
[[nodiscard]] std::string fmt_pm(double mean, int precision = 1,
                                 double std = 0.0);

/// Prints a trace as "t=...s v=..." rows, resampled to `interval` buckets --
/// the textual stand-in for the paper's time-series figures.
void print_series(std::ostream& os, const std::string& title,
                  const sim::Trace& trace, sim::Duration interval,
                  sim::Time begin, sim::Time end);

/// Renders a trace as a one-line-per-bucket ASCII bar chart (value scaled to
/// `max_value` over `width` characters).
void print_ascii_chart(std::ostream& os, const std::string& title,
                       const sim::Trace& trace, sim::Duration interval,
                       sim::Time begin, sim::Time end, double max_value,
                       int width = 60);

/// The canonical bench banner: "=== <title> (<seconds> <unit>) ===\n\n".
void print_bench_header(std::ostream& os, const std::string& title,
                        int seconds, const std::string& unit = "s per run");
/// Free-form parenthetical variant: "=== <title> (<detail>) ===\n\n".
void print_bench_header(std::ostream& os, const std::string& title,
                        const std::string& detail);

/// Prints every counter and gauge, name-sorted, as a fixed-width table.
void print_counters(std::ostream& os, const obs::Counters& counters);

/// The fleet trailer every sweep bench prints: runs/workers/frames and the
/// buffer-pool reuse line.
void print_fleet_summary(std::ostream& os, const FleetStats& stats);

}  // namespace ccdem::harness
