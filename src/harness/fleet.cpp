#include "harness/fleet.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "device/simulated_device.h"

namespace ccdem::harness {

std::vector<ExperimentResult> FleetRunner::run(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentResult> results(configs.size());
  stats_ = FleetStats{};
  if (configs.empty()) return results;

  unsigned threads = max_threads_ != 0 ? max_threads_
                                       : std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(
                             threads, static_cast<unsigned>(configs.size())));
  stats_.workers = threads;

  // Work stealing via a shared index; each run is independent and each
  // worker's device (and pool) is touched by that worker only.
  std::atomic<std::size_t> next{0};
  std::mutex stats_mu;
  auto worker = [&] {
    device::SimulatedDevice dev(/*use_buffer_pool=*/true);
    // Each worker owns a private sink (a caller-provided config.obs is not
    // thread-safe across workers, so it is overridden).  Spans stay off:
    // a sweep's ring buffers would only hold each worker's last run.
    obs::ObsSink sink;
    sink.spans.set_enabled(false);
    std::uint64_t runs = 0;
    std::uint64_t frames = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) break;
      ExperimentConfig cfg = configs[i];
      cfg.obs = &sink;
      results[i] = run_experiment_on(dev, cfg);
      ++runs;
      frames += results[i].frames_composed;
    }
    const gfx::BufferPool& pool = *dev.buffer_pool();
    std::lock_guard<std::mutex> lock(stats_mu);
    stats_.runs_completed += runs;
    stats_.frames_composed += frames;
    stats_.buffer_acquires += pool.acquires();
    stats_.buffer_reuses += pool.reuses();
    stats_.buffer_allocations += pool.allocations();
    stats_.counters.merge(sink.counters);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace ccdem::harness
