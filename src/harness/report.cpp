#include "harness/report.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "harness/fleet.h"

namespace ccdem::harness {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |\n";
  };
  auto print_sep = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+" : "-+") << std::string(widths[c] + 1, '-');
    }
    os << "-+\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pm(double mean, int precision, double std) {
  return fmt(mean, precision) + " (+-" + fmt(std, precision) + ")";
}

void print_series(std::ostream& os, const std::string& title,
                  const sim::Trace& trace, sim::Duration interval,
                  sim::Time begin, sim::Time end) {
  os << "# " << title << "\n";
  const sim::Trace rs = trace.resample(interval, begin, end);
  for (const auto& p : rs.points()) {
    os << "t=" << fmt(p.t.seconds(), 1) << "s\t" << fmt(p.value, 2) << "\n";
  }
}

void print_ascii_chart(std::ostream& os, const std::string& title,
                       const sim::Trace& trace, sim::Duration interval,
                       sim::Time begin, sim::Time end, double max_value,
                       int width) {
  os << "# " << title << " (scale: 0.." << fmt(max_value, 0) << ")\n";
  const sim::Trace rs = trace.resample(interval, begin, end);
  for (const auto& p : rs.points()) {
    const double clamped = std::clamp(p.value, 0.0, max_value);
    const int bar = max_value <= 0.0
                        ? 0
                        : static_cast<int>(clamped / max_value * width + 0.5);
    os << std::right << std::setw(7) << fmt(p.t.seconds(), 1) << "s |"
       << std::string(static_cast<std::size_t>(bar), '#')
       << std::string(static_cast<std::size_t>(width - bar), ' ') << "| "
       << fmt(p.value, 1) << "\n";
  }
}

void print_bench_header(std::ostream& os, const std::string& title,
                        int seconds, const std::string& unit) {
  os << "=== " << title << " (" << seconds << " " << unit << ") ===\n\n";
}

void print_bench_header(std::ostream& os, const std::string& title,
                        const std::string& detail) {
  os << "=== " << title << " (" << detail << ") ===\n\n";
}

void print_counters(std::ostream& os, const obs::Counters& counters) {
  const obs::Counters::Snapshot snap = counters.snapshot();
  TextTable t({"Counter", "Value"});
  for (const auto& [name, value] : snap.counters) {
    t.add_row({name, std::to_string(value)});
  }
  for (const auto& [name, value] : snap.gauges) {
    t.add_row({name + " (gauge)", fmt(value, 3)});
  }
  t.print(os);
}

void print_fleet_summary(std::ostream& os, const FleetStats& stats) {
  os << "[fleet] " << stats.runs_completed << " runs on " << stats.workers
     << " workers, " << stats.frames_composed
     << " frames composed; buffer pool avoided " << stats.buffer_reuses
     << "/" << stats.buffer_acquires << " allocations ("
     << stats.buffer_allocations << " fresh)\n";
}

}  // namespace ccdem::harness
