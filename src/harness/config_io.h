// Experiment configuration files.
//
// A small key = value format so experiments can be described, versioned and
// replayed without recompiling:
//
//     # jelly.conf
//     app          = Jelly Splash
//     mode         = section+boost     # baseline | section | section+boost |
//                                      # naive | hysteresis | e3 | pipeline
//     pipeline     = section,hysteresis,boost  # required (and only valid)
//                                      # when mode = pipeline; ordered stage
//                                      # list, no duplicates, needs a rate
//                                      # source (section|naive|predictive)
//     seconds      = 30
//     seed         = 7
//     grid         = 9k                # 2k | 4k | 9k | 36k | full
//     eval_ms      = 100
//     boost_hold_ms= 500
//     alpha        = 0.5
//     rates        = 20,24,30,40,60    # panel ladder (all > 0)
//     baseline_hz  = 60                # must be a member of `rates`
//     min_hz       = 24                # controller floor; member of `rates`
//     boost_hz     = 60                # boost target; member of `rates`
//     fault_scale  = 1.0               # x FaultPlan::nominal(); 0 = clean
//
// Unknown keys are rejected (typos must not silently become defaults), and
// numeric values parse strictly: trailing garbage ("12abc"), NaN, infinity,
// negative thresholds and non-positive refresh rates are all errors with a
// line-numbered message -- a config that parses is a config that runs.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "harness/experiment.h"

namespace ccdem::harness {

/// Parses a config; std::nullopt on error with a message in `error`.
[[nodiscard]] std::optional<ExperimentConfig> parse_experiment_config(
    std::istream& is, std::string* error = nullptr);

[[nodiscard]] std::optional<ExperimentConfig> parse_experiment_config_string(
    const std::string& text, std::string* error = nullptr);

/// Renders a config back to the same format (round-trippable).
[[nodiscard]] std::string experiment_config_to_string(
    const ExperimentConfig& config);

}  // namespace ccdem::harness
