#include "harness/config_io.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ccdem::harness {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

std::optional<ControlMode> parse_mode(const std::string& v) {
  if (v == "baseline") return ControlMode::kBaseline60;
  if (v == "section") return ControlMode::kSection;
  if (v == "section+boost") return ControlMode::kSectionWithBoost;
  if (v == "naive") return ControlMode::kNaive;
  if (v == "hysteresis") return ControlMode::kSectionHysteresis;
  if (v == "e3") return ControlMode::kE3FrameRate;
  return std::nullopt;
}

const char* mode_keyword(ControlMode m) {
  switch (m) {
    case ControlMode::kBaseline60: return "baseline";
    case ControlMode::kSection: return "section";
    case ControlMode::kSectionWithBoost: return "section+boost";
    case ControlMode::kNaive: return "naive";
    case ControlMode::kSectionHysteresis: return "hysteresis";
    case ControlMode::kE3FrameRate: return "e3";
  }
  return "baseline";
}

std::optional<core::GridSpec> parse_grid(const std::string& v) {
  if (v == "2k") return core::GridSpec::grid_2k();
  if (v == "4k") return core::GridSpec::grid_4k();
  if (v == "9k") return core::GridSpec::grid_9k();
  if (v == "36k") return core::GridSpec::grid_36k();
  if (v == "full") return core::GridSpec::full_720p();
  return std::nullopt;
}

std::string grid_keyword(const core::GridSpec& g) {
  const auto n = g.sample_count();
  if (n == core::GridSpec::grid_2k().sample_count()) return "2k";
  if (n == core::GridSpec::grid_4k().sample_count()) return "4k";
  if (n == core::GridSpec::grid_9k().sample_count()) return "9k";
  if (n == core::GridSpec::grid_36k().sample_count()) return "36k";
  return "full";
}

}  // namespace

std::optional<ExperimentConfig> parse_experiment_config(std::istream& is,
                                                        std::string* error) {
  ExperimentConfig config;
  bool have_app = false;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      set_error(error, "line " + std::to_string(line_no) + ": expected '='");
      return std::nullopt;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto bad_value = [&] {
      set_error(error, "line " + std::to_string(line_no) + ": bad value '" +
                           value + "' for key '" + key + "'");
      return std::nullopt;
    };

    if (key == "app") {
      bool found = false;
      for (const auto& spec : apps::all_apps()) {
        if (spec.name == value) {
          config.app = spec;
          found = true;
          break;
        }
      }
      if (!found) return bad_value();
      have_app = true;
    } else if (key == "mode") {
      const auto m = parse_mode(value);
      if (!m) return bad_value();
      config.mode = *m;
    } else if (key == "seconds") {
      const int s = std::atoi(value.c_str());
      if (s <= 0) return bad_value();
      config.duration = sim::seconds(s);
    } else if (key == "seed") {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "grid") {
      const auto g = parse_grid(value);
      if (!g) return bad_value();
      config.dpm.grid = *g;
    } else if (key == "eval_ms") {
      const int ms = std::atoi(value.c_str());
      if (ms <= 0) return bad_value();
      config.dpm.eval_period = sim::milliseconds(ms);
    } else if (key == "boost_hold_ms") {
      const int ms = std::atoi(value.c_str());
      if (ms < 0) return bad_value();
      config.dpm.boost_hold = sim::milliseconds(ms);
    } else if (key == "alpha") {
      const double a = std::atof(value.c_str());
      if (a < 0.0 || a > 1.0) return bad_value();
      config.dpm.section_alpha = a;
    } else {
      set_error(error, "line " + std::to_string(line_no) +
                           ": unknown key '" + key + "'");
      return std::nullopt;
    }
  }
  if (!have_app) {
    set_error(error, "missing required key 'app'");
    return std::nullopt;
  }
  return config;
}

std::optional<ExperimentConfig> parse_experiment_config_string(
    const std::string& text, std::string* error) {
  std::istringstream is(text);
  return parse_experiment_config(is, error);
}

std::string experiment_config_to_string(const ExperimentConfig& config) {
  std::ostringstream os;
  os << "app = " << config.app.name << "\n";
  os << "mode = " << mode_keyword(config.mode) << "\n";
  os << "seconds = " << config.duration.ticks / sim::kTicksPerSecond << "\n";
  os << "seed = " << config.seed << "\n";
  os << "grid = " << grid_keyword(config.dpm.grid) << "\n";
  os << "eval_ms = "
     << config.dpm.eval_period.ticks / sim::kTicksPerMillisecond << "\n";
  os << "boost_hold_ms = "
     << config.dpm.boost_hold.ticks / sim::kTicksPerMillisecond << "\n";
  os << "alpha = " << config.dpm.section_alpha << "\n";
  return os.str();
}

}  // namespace ccdem::harness
