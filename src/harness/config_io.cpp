#include "harness/config_io.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <vector>

namespace ccdem::harness {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Strict numeric parsing: the whole value must be consumed (no "12abc", no
// empty string) and doubles must be finite ("nan" passes a `< 0 || > 1`
// range check because every NaN comparison is false -- the atof-era parser
// accepted it).
std::optional<long long> parse_int_strict(const std::string& v) {
  long long out = 0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || v.empty()) return std::nullopt;
  return out;
}

std::optional<unsigned long long> parse_u64_strict(const std::string& v) {
  unsigned long long out = 0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || v.empty()) return std::nullopt;
  return out;
}

std::optional<double> parse_double_strict(const std::string& v) {
  double out = 0.0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || v.empty()) return std::nullopt;
  if (!std::isfinite(out)) return std::nullopt;
  return out;
}

/// Comma-separated list of strictly-positive refresh rates.
std::optional<std::vector<int>> parse_rate_list(const std::string& v) {
  std::vector<int> rates;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const auto comma = v.find(',', pos);
    const std::string item =
        trim(v.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos));
    const auto hz = parse_int_strict(item);
    if (!hz || *hz <= 0 || *hz > 1000) return std::nullopt;
    rates.push_back(static_cast<int>(*hz));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (rates.empty()) return std::nullopt;
  return rates;
}

bool set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

std::optional<core::GridSpec> parse_grid(const std::string& v) {
  if (v == "2k") return core::GridSpec::grid_2k();
  if (v == "4k") return core::GridSpec::grid_4k();
  if (v == "9k") return core::GridSpec::grid_9k();
  if (v == "36k") return core::GridSpec::grid_36k();
  if (v == "full") return core::GridSpec::full_720p();
  return std::nullopt;
}

std::string grid_keyword(const core::GridSpec& g) {
  const auto n = g.sample_count();
  if (n == core::GridSpec::grid_2k().sample_count()) return "2k";
  if (n == core::GridSpec::grid_4k().sample_count()) return "4k";
  if (n == core::GridSpec::grid_9k().sample_count()) return "9k";
  if (n == core::GridSpec::grid_36k().sample_count()) return "36k";
  return "full";
}

}  // namespace

std::optional<ExperimentConfig> parse_experiment_config(std::istream& is,
                                                        std::string* error) {
  ExperimentConfig config;
  bool have_app = false;
  bool have_pipeline = false;
  // Applied after the loop so 'fault_scale' (which rebuilds the whole plan)
  // and 'pressure_scale' compose regardless of key order.
  double pressure_scale = 0.0;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      set_error(error, "line " + std::to_string(line_no) + ": expected '='");
      return std::nullopt;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto bad_value = [&] {
      set_error(error, "line " + std::to_string(line_no) + ": bad value '" +
                           value + "' for key '" + key + "'");
      return std::nullopt;
    };

    if (key == "app") {
      // find_profile spans the paper's 30 apps, the accuracy-study
      // wallpaper and the scene-demo profiles.
      const auto spec = apps::find_profile(value);
      if (!spec) return bad_value();
      config.app = *spec;
      have_app = true;
    } else if (key == "mode") {
      const auto m = device::control_mode_from_keyword(value);
      if (!m) return bad_value();
      config.mode = *m;
    } else if (key == "pipeline") {
      if (have_pipeline) {
        set_error(error, "line " + std::to_string(line_no) +
                             ": duplicate key 'pipeline'");
        return std::nullopt;
      }
      std::string spec_error;
      const auto spec = core::PipelineSpec::parse(value, &spec_error);
      if (!spec) {
        set_error(error, "line " + std::to_string(line_no) +
                             ": bad value for 'pipeline': " + spec_error);
        return std::nullopt;
      }
      config.pipeline = *spec;
      have_pipeline = true;
    } else if (key == "seconds") {
      const auto s = parse_int_strict(value);
      if (!s || *s <= 0) return bad_value();
      config.duration = sim::seconds(static_cast<int>(*s));
    } else if (key == "seed") {
      const auto s = parse_u64_strict(value);
      if (!s) return bad_value();
      config.seed = *s;
    } else if (key == "grid") {
      const auto g = parse_grid(value);
      if (!g) return bad_value();
      config.dpm.meter.grid = *g;
    } else if (key == "eval_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms <= 0) return bad_value();
      config.dpm.meter.eval_period = sim::milliseconds(static_cast<int>(*ms));
    } else if (key == "boost_hold_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms < 0) return bad_value();
      config.dpm.boost_hold = sim::milliseconds(static_cast<int>(*ms));
    } else if (key == "alpha") {
      const auto a = parse_double_strict(value);
      if (!a || *a < 0.0 || *a > 1.0) return bad_value();
      config.dpm.section_alpha = *a;
    } else if (key == "rates") {
      const auto r = parse_rate_list(value);
      if (!r) return bad_value();
      config.rates = display::RefreshRateSet(*r);
    } else if (key == "baseline_hz") {
      const auto hz = parse_int_strict(value);
      if (!hz || *hz <= 0) return bad_value();
      config.baseline_hz = static_cast<int>(*hz);
    } else if (key == "min_hz") {
      const auto hz = parse_int_strict(value);
      if (!hz || *hz <= 0) return bad_value();
      config.dpm.min_hz = static_cast<int>(*hz);
    } else if (key == "boost_hz") {
      const auto hz = parse_int_strict(value);
      if (!hz || *hz <= 0) return bad_value();
      config.dpm.boost_hz = static_cast<int>(*hz);
    } else if (key == "fault_scale") {
      const auto f = parse_double_strict(value);
      if (!f || *f < 0.0) return bad_value();
      config.fault = *f > 0.0 ? fault::FaultPlan::nominal().scaled(*f)
                              : fault::FaultPlan{};
    } else if (key == "pressure_scale") {
      const auto f = parse_double_strict(value);
      if (!f || *f < 0.0) return bad_value();
      pressure_scale = *f;
    } else {
      set_error(error, "line " + std::to_string(line_no) +
                           ": unknown key '" + key + "'");
      return std::nullopt;
    }
  }
  if (!have_app) {
    set_error(error, "missing required key 'app'");
    return std::nullopt;
  }
  if (pressure_scale > 0.0) {
    const fault::FaultPlan p =
        fault::FaultPlan::pressure_nominal().scaled(pressure_scale);
    config.fault.thermal_per_s = p.thermal_per_s;
    config.fault.brownout_per_s = p.brownout_per_s;
    config.fault.jitter_per_s = p.jitter_per_s;
  }
  // Keys may appear in any order, so the mode <-> pipeline pairing is
  // checked once the whole file is read.
  if (config.mode == ControlMode::kPipeline && !have_pipeline) {
    set_error(error, "mode = pipeline requires a 'pipeline' key");
    return std::nullopt;
  }
  if (have_pipeline && config.mode != ControlMode::kPipeline) {
    set_error(error, "'pipeline' is only valid with mode = pipeline");
    return std::nullopt;
  }
  // Cross-field validation (keys may appear in any order, so membership in
  // the rate ladder is checked once the whole file is read).
  const auto check_in_rates = [&](const char* key, int hz) {
    if (hz > 0 && !config.rates.supports(hz)) {
      set_error(error, std::string(key) + " = " + std::to_string(hz) +
                           " is not in the configured rate set");
      return false;
    }
    return true;
  };
  if (!check_in_rates("baseline_hz", config.baseline_hz) ||
      !check_in_rates("min_hz", config.dpm.min_hz) ||
      !check_in_rates("boost_hz", config.dpm.boost_hz)) {
    return std::nullopt;
  }
  return config;
}

std::optional<ExperimentConfig> parse_experiment_config_string(
    const std::string& text, std::string* error) {
  std::istringstream is(text);
  return parse_experiment_config(is, error);
}

std::string experiment_config_to_string(const ExperimentConfig& config) {
  std::ostringstream os;
  os << "app = " << config.app.name << "\n";
  os << "mode = " << device::control_mode_keyword(config.mode) << "\n";
  if (config.mode == ControlMode::kPipeline) {
    os << "pipeline = " << config.pipeline.to_string() << "\n";
  }
  os << "seconds = " << config.duration.ticks / sim::kTicksPerSecond << "\n";
  os << "seed = " << config.seed << "\n";
  os << "grid = " << grid_keyword(config.dpm.meter.grid) << "\n";
  os << "eval_ms = "
     << config.dpm.meter.eval_period.ticks / sim::kTicksPerMillisecond << "\n";
  os << "boost_hold_ms = "
     << config.dpm.boost_hold.ticks / sim::kTicksPerMillisecond << "\n";
  os << "alpha = " << config.dpm.section_alpha << "\n";
  os << "rates = ";
  for (std::size_t i = 0; i < config.rates.count(); ++i) {
    if (i != 0) os << ",";
    os << config.rates.at(i);
  }
  os << "\n";
  if (config.baseline_hz > 0) {
    os << "baseline_hz = " << config.baseline_hz << "\n";
  }
  if (config.dpm.min_hz > 0) os << "min_hz = " << config.dpm.min_hz << "\n";
  if (config.dpm.boost_hz > 0) {
    os << "boost_hz = " << config.dpm.boost_hz << "\n";
  }
  return os.str();
}

}  // namespace ccdem::harness
